// The global master (§3.1): virtual-disk metadata, chunk placement, leases,
// and failure recovery (view change, §4.2.2).
//
// The master is deliberately off the normal I/O path — clients talk to it
// only for disk create/open, lease renewal, and failure reports — so its
// operations are modelled as direct in-process calls (their cost is not part
// of any measured data path, matching the paper's design goal).
#ifndef URSA_CLUSTER_MASTER_H_
#define URSA_CLUSTER_MASTER_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/cluster/chunk_server.h"
#include "src/cluster/placement.h"
#include "src/cluster/types.h"
#include "src/ec/reed_solomon.h"
#include "src/net/transport.h"
#include "src/scrub/recovery_admission.h"

namespace ursa::tier {
class HeatTracker;
}  // namespace ursa::tier

namespace ursa::cluster {

using ClientId = uint64_t;

struct DiskMeta {
  DiskId id = 0;
  std::string name;
  uint64_t size = 0;
  int replication = 3;
  int stripe_group = 2;          // chunks per striping group (§3.4)
  uint64_t stripe_unit = 512 * kKiB;  // interleaving granularity
  uint64_t chunk_size = storage::kDefaultChunkSize;
  std::vector<ChunkLayout> chunks;

  // Lease state (§4.1): at most one client holds a disk at a time.
  ClientId lease_holder = 0;
  Nanos lease_expiry = 0;
};

struct RecoveryStats {
  uint64_t chunks_recovered = 0;
  uint64_t bytes_transferred = 0;
  uint64_t incremental_repairs = 0;
  uint64_t full_copies = 0;
  uint64_t view_changes = 0;
  uint64_t corruption_repairs = 0;  // CRC-detected ranges re-replicated
  uint64_t demotions = 0;           // health-driven replica demotions
  uint64_t undemotions = 0;         // recoveries back to full standing
};

// Tiering counters (DESIGN.md §13).
struct TierStats {
  uint64_t demotions = 0;           // replicated -> EC commits
  uint64_t demote_aborts = 0;       // precondition races caught at commit
  uint64_t demote_failures = 0;     // setup/transfer failures (incl. timeouts)
  uint64_t promotions = 0;          // EC -> replicated commits
  uint64_t write_promotions = 0;    // promotions triggered by a client write
  uint64_t promote_failures = 0;
  uint64_t shard_repairs = 0;       // full shard rebuilds onto a new server
  uint64_t shard_range_repairs = 0;  // scrub-corruption stripe repairs
  uint64_t ec_bytes_encoded = 0;     // logical bytes pushed through Encode
  uint64_t spec_promotions = 0;      // promotions committed via speculation
  uint64_t spec_backfill_retries = 0;  // failed back-fill passes (retried)
  uint64_t spec_resumes = 0;         // back-fills restarted by Restore()
};

class Master {
 public:
  Master(sim::Simulator* sim, net::Transport* transport, Placement placement,
         std::vector<ChunkServer*> servers);
  ~Master();  // out-of-line: members hold unique_ptrs to private impl types

  // ---- Virtual disk management ----

  Result<DiskId> CreateDisk(const std::string& name, uint64_t size, int replication,
                            int stripe_group);

  // Grants (or renews) the lease and returns the disk's layout. Fails with
  // kUnavailable when another client holds an unexpired lease.
  Result<const DiskMeta*> OpenDisk(DiskId disk, ClientId client);
  Status RenewLease(DiskId disk, ClientId client);
  Status CloseDisk(DiskId disk, ClientId client);

  Result<const DiskMeta*> GetDisk(DiskId disk) const;

  // ---- Failure handling (§4.2.2) ----

  // Client-reported replica failure: allocate a replacement, transfer the
  // newest data (from the survivor with the highest version among a majority),
  // incremental-repair lagging survivors, then bump the chunk's view.
  // `done` runs when the new view is installed.
  void ReportReplicaFailure(ChunkId chunk, ServerId failed, std::function<void(Status)> done);

  // Incremental repair of a lagging replica using a peer's journal lite
  // (§4.2.1); falls back to a full chunk copy when history is gone.
  void RepairReplica(ChunkId chunk, ServerId lagging, std::function<void(Status)> done);

  // Repairs every lagging replica of `chunk` toward the freshest alive one
  // (fire-and-forget; used when a client reports a degraded commit).
  void RepairChunkReplicas(ChunkId chunk);

  // Re-replicates [offset, offset+length) of `chunk` onto `corrupt_server`
  // from the freshest OTHER alive replica. Unlike RepairReplica, this runs
  // even when the damaged replica holds the highest version: CRC-detected
  // corruption destroys data without lowering the version, so version
  // comparison alone would never repair it. `done` runs once the range is
  // rewritten (and must only then lift the read quarantine).
  void RepairCorruptRange(ChunkId chunk, ServerId corrupt_server, uint64_t offset,
                          uint64_t length, std::function<void(Status)> done);

  // ---- Health-driven demotion (DESIGN.md §10) ----

  // Marks every replica hosted by `server` as demoted (or restores it).
  // Demotion re-sorts each affected layout so a healthy replica leads, and
  // bumps the layout's view — lease-holding clients hit a "stale view"
  // VersionMismatch on their next op, refresh, and steer away. No data
  // moves: a demoted replica keeps serving replication writes and remains a
  // last-resort read target, so a wrong demotion costs latency, never
  // durability. Recovery source/placement decisions also tie-break away
  // from demoted servers (but a uniquely-freshest demoted replica is still
  // used — correctness beats steering).
  void SetServerDemoted(ServerId server, bool demoted);
  bool IsDemoted(ServerId server) const { return demoted_.count(server) > 0; }
  const std::set<ServerId>& demoted_servers() const { return demoted_; }

  // ---- Continuous health weighting (DESIGN.md §11) ----

  // Supplies the HealthMonitor's numeric score for a server's device (windowed
  // p99 / peer median; 0 while unscored). With a provider installed, replica
  // ordering and recovery-source selection break rank ties toward the lower
  // score once either side crosses `health_score_deadband` — a *suspect*
  // device sheds read preference gracefully before the binary demotion flag
  // ever flips.
  void SetHealthScoreProvider(std::function<double(ServerId)> fn) {
    health_score_ = std::move(fn);
  }
  void set_health_score_deadband(double d) { health_score_deadband_ = d; }

  // Re-sorts every layout under the current health scores; bumps the view
  // (and installs it) only for layouts whose replica order actually changed.
  // The cluster calls this on every health transition, including ->suspect.
  void OnHealthScoresChanged();

  // ---- Recovery admission (DESIGN.md §11) ----

  // Installs the cluster-wide per-source transfer admission controller.
  // Every transfer the master issues — failure recovery, demotion-steered
  // repair, scrub corruption repair — acquires a source slot before its piece
  // pump starts; scrub-class transfers yield to recovery-class ones.
  void SetAdmission(scrub::RecoveryAdmission* admission) { admission_ = admission; }
  scrub::RecoveryAdmission* admission() const { return admission_; }

  // ---- Scrub support (DESIGN.md §11) ----

  // Every chunk's current placement (the scrub coordinator's sweep source).
  struct ChunkPlacement {
    ChunkId chunk = 0;
    uint64_t size = 0;
    std::vector<ServerId> servers;
  };
  std::vector<ChunkPlacement> ListChunks() const;

  // ---- Tiered placement (DESIGN.md §13) ----

  // Installs the cluster heat tracker. With one installed, demotion refuses
  // chunks with writes in flight and registers shard->parent aliases so
  // reads of EC shards keep heating the parent chunk.
  void SetHeatTracker(tier::HeatTracker* heat) { heat_ = heat; }

  // Demotes a replicated chunk to a k+m EC stripe: reads the freshest
  // replica, encodes, writes k data + m parity shards to distinct servers
  // (machine-spread), then — atomically, in one event — re-verifies the
  // preconditions (version unchanged, no write in flight) and commits by
  // freeing the replicas and installing the EC layout. Any precondition
  // change aborts and frees the shards instead; the chunk stays replicated.
  // Transfer I/O runs under kScrub QoS and takes a kScrub admission slot
  // (policy traffic yields to failure recovery).
  void DemoteChunkToEc(ChunkId chunk, int k, int m, std::function<void(Status)> done);

  // Promotes an EC'd chunk back to replication: reads k shards (degraded
  // reconstruct if some are down), writes full replicas, restores the frozen
  // replica version, frees the shards. Idempotent — promoting a replicated
  // chunk succeeds immediately, and concurrent requests for a chunk whose
  // migration is in flight queue behind it. `write_triggered` promotions
  // (client write to an EC'd chunk, acked only after promotion) run under
  // kRecovery QoS/priority; policy promotions under kScrub.
  void PromoteChunk(ChunkId chunk, bool write_triggered, std::function<void(Status)> done);

  // Speculative write promotion (PariX-style, DESIGN.md §13.6): allocates
  // fresh replica targets for a cold chunk *at the current view*, installs
  // them as the layout's spec_replicas, arms the background shard back-fill,
  // and completes `done` immediately — the client then writes its new data
  // straight to the spec replicas and acks on quorum durability while the
  // old bytes stream in behind it. Falls back to the blocking PromoteChunk
  // when speculation is disabled or placement fails. Idempotent: a chunk
  // that is already replicated or already speculating completes at once.
  void BeginWritePromote(ChunkId chunk, std::function<void(Status)> done);

  // Client post-ack notification: [offset, offset+length) of `chunk` is now
  // durable on the spec replica quorum. The master merges it into the
  // layout's spec_extents so a freshly-opened client routes reads of those
  // bytes at the spec replicas instead of the (stale) shards. Fire-and-forget
  // and monotonic — replays and duplicates are harmless.
  void RegisterSpecExtent(ChunkId chunk, uint64_t offset, uint64_t length);

  void set_speculative_promote(bool on) { speculative_promote_ = on; }
  bool speculative_promote() const { return speculative_promote_; }

  // Delay before a failed back-fill pass is retried.
  void set_spec_retry_delay(Nanos d) { spec_retry_ = d; }

  // Observer fired with (chunk, now_ec) whenever a chunk's tier changes —
  // demote/promote/speculative commits and master Restore. The tier
  // migrator uses it to keep its heat-indexed candidate queues keyed
  // without rescanning the chunk population.
  void SetTierChangeListener(std::function<void(ChunkId, bool)> fn) {
    tier_changed_ = std::move(fn);
  }

  // Rebuilds shard `shard_index` of EC'd chunk `parent` from k surviving
  // shards onto a replacement server (kRecovery class + admission slot).
  void RepairEcShard(ChunkId parent, int shard_index, std::function<void(Status)> done);

  // True when `id` is an EC shard chunk (not a client-addressable chunk).
  bool IsEcShard(ChunkId id) const { return ec_shards_.count(id) > 0; }

  // Tier scan source: every client-addressable chunk and its current tier.
  struct TierChunkInfo {
    ChunkId chunk = 0;
    bool ec = false;
  };
  std::vector<TierChunkInfo> ListTierChunks() const;

  // Capacity accounting: physical bytes currently allocated for chunk data
  // (replicas * chunk_size + shards * shard_size) vs logical disk bytes.
  uint64_t PhysicalBytes() const;
  uint64_t LogicalBytes() const;

  const TierStats& tier_stats() const { return tier_stats_; }

  // Upper bound on one migration's lifetime: a transfer wedged past this
  // (e.g. a server crashing mid-copy silently drops the piece) aborts,
  // releasing its admission slot and any allocated shards.
  void set_migration_timeout(Nanos t) { migration_timeout_ = t; }

  // ---- Master recovery (§4.2.2: "the master is recovered first") ----
  // The master's durable state is its metadata; a restart restores the
  // checkpoint and re-verifies replica versions lazily through the normal
  // repair paths (chunk state lives on the chunk servers, GFS-style).
  struct Checkpoint {
    std::map<DiskId, DiskMeta> disks;
    DiskId next_disk_id = 1;
    ChunkId next_chunk_id = 1;
  };
  Checkpoint TakeCheckpoint() const;
  void Restore(const Checkpoint& checkpoint);

  const RecoveryStats& recovery_stats() const { return recovery_stats_; }

  // Publishes recovery counters and disk/chunk population gauges. The
  // registry must outlive this master.
  void RegisterMetrics(obs::MetricsRegistry* registry);

  ChunkServer* server(ServerId id) const { return servers_[id]; }
  size_t num_servers() const { return servers_.size(); }
  const Placement& placement() const { return placement_; }

  // Lease term granted to clients.
  Nanos lease_term() const { return lease_term_; }
  void set_lease_term(Nanos term) { lease_term_ = term; }

  // Chunk size for newly created disks (set by Cluster from its config).
  uint64_t chunk_size() const { return chunk_size_; }
  void set_chunk_size(uint64_t size) { chunk_size_ = size; }

  // Transfer piece size and window for recovery copies.
  void set_recovery_piece(uint64_t bytes) { recovery_piece_ = bytes; }
  void set_recovery_window(int pieces) { recovery_window_ = pieces; }

  // Whether recovery transfers carry real bytes (default) or model timing
  // only (large-scale benchmarks, where materializing chunk contents in the
  // page stores would waste memory).
  void set_recovery_carries_data(bool v) { recovery_carries_data_ = v; }

 private:
  struct ChunkRef {
    DiskId disk;
    size_t index;  // position in DiskMeta::chunks
  };

  // Copies [0, chunk_size) of `chunk` from `source` to `target` over the
  // network in pieces; `done` runs with the source's version on success.
  // `cls` is the QoS class the transfer's device I/O runs under; when the
  // target device has an I/O gate, the piece pump pauses at the recovery
  // class's queue-depth high watermark and resumes on drain (backpressure —
  // recovery yields to foreground instead of flooding the device queue).
  // With an admission controller installed, the transfer first acquires a
  // per-source slot (and releases it when `done` fires).
  void TransferChunk(ChunkId chunk, ChunkServer* source, ChunkServer* target,
                     uint64_t chunk_size, std::function<void(Status, uint64_t)> done,
                     qos::ServiceClass cls = qos::ServiceClass::kRecovery);

  // Copies specific ranges (incremental repair / corruption scrub). Same
  // admission contract as TransferChunk.
  void TransferRanges(ChunkId chunk, ChunkServer* source, ChunkServer* target,
                      std::vector<Interval> ranges, std::function<void(Status)> done,
                      qos::ServiceClass cls = qos::ServiceClass::kRecovery);

  // Un-admitted piece pumps (the bodies of the above).
  void TransferChunkNow(ChunkId chunk, ChunkServer* source, ChunkServer* target,
                        uint64_t chunk_size, std::function<void(Status, uint64_t)> done,
                        qos::ServiceClass cls);
  void TransferRangesNow(ChunkId chunk, ChunkServer* source, ChunkServer* target,
                         std::vector<Interval> ranges, std::function<void(Status)> done,
                         qos::ServiceClass cls);

  // Rank-first replica preference with the continuous-health tiebreak.
  bool PreferReplica(const ReplicaRef& a, const ReplicaRef& b) const;
  void SortLayout(ChunkLayout* layout);

  ChunkLayout* FindLayout(ChunkId chunk);

  // ---- Tiering internals (DESIGN.md §13) ----

  struct EcShardInfo {
    ChunkId parent = 0;
    int index = 0;
  };

  // Shared completion state for one migration: guards against the timeout
  // and a late transfer callback both finishing the operation.
  struct MigrationOp;

  // One attempt at back-filling a speculatively-promoted chunk from its
  // shards, plus the per-chunk record that owns it. Exactly one of the
  // final write completion, the timeout, or a Restore finishes a pass;
  // canceled passes let their in-flight callbacks die silently.
  struct SpecPass;
  struct SpecState;

  ec::ReedSolomon* Codec(int k, int m);

  // Picks `n` distinct alive servers, round-robining machines for spread.
  Result<std::vector<ServerId>> PickShardServers(int n, uint64_t salt) const;

  // Windowed piece pump reading [0, size) of `chunk` on `server` into `out`
  // (null = timing-only) under `cls`; `done(status, replica_version)`.
  // `hold` keeps the buffer behind `out` alive until every piece lands.
  void ReadChunkPieces(ChunkServer* server, ChunkId chunk, uint64_t size, uint8_t* out,
                       std::shared_ptr<void> hold, qos::ServiceClass cls,
                       std::function<void(Status, uint64_t)> done);

  // Ships [0, size) over the wire from `from_node` and recovery-writes it
  // into `chunk` on `target` (gate-backpressured like TransferChunkNow).
  // `shielded` routes pieces through HandleBackfillWrite, which subtracts
  // the target's client-written ranges at apply time — the speculative
  // back-fill path, where old shard bytes must never clobber new data.
  void WriteChunkPieces(ChunkServer* target, ChunkId chunk, uint64_t size, const uint8_t* data,
                        std::shared_ptr<void> hold, net::NodeId from_node, qos::ServiceClass cls,
                        std::function<void(Status)> done, bool shielded = false);

  void DemoteChunkNow(ChunkId chunk, int k, int m, std::shared_ptr<MigrationOp> op);
  void PromoteChunkNow(ChunkId chunk, bool write_triggered, std::shared_ptr<MigrationOp> op);
  void RepairEcShardNow(ChunkId parent, int shard_index, std::shared_ptr<MigrationOp> op);
  void RepairEcShardRange(ChunkId shard, uint64_t offset, uint64_t length,
                          std::function<void(Status)> done);

  // Atomic commit steps — each runs in one event, re-verifying preconditions
  // before mutating the layout (nothing can interleave mid-function).
  void CommitDemote(ChunkId chunk, std::vector<EcShardRef> shards, uint64_t frozen_version,
                    int k, int m, uint64_t shard_size, std::shared_ptr<MigrationOp> op);
  void CommitPromote(ChunkId chunk, std::vector<ServerId> targets, uint64_t frozen_version,
                     bool write_triggered, std::shared_ptr<MigrationOp> op);

  // Single completion funnel: cancels the timeout, releases the admission
  // slot, frees uncommitted allocations on failure, and runs `done` once.
  void CompleteMigration(std::shared_ptr<MigrationOp> op, Status s);

  // Ends a migration: drops the in-flight mark and reruns queued promotes.
  void FinishMigration(ChunkId chunk);

  // ---- Speculative promotion internals (DESIGN.md §13.6) ----

  // Arms a back-fill pass for a speculating chunk (admission + timeout);
  // no-op when the chunk stopped speculating or a pass is already running.
  void StartSpecBackfill(ChunkId chunk);
  // The pass body: plan the shard reads, reconstruct missing data shards,
  // then stream the old image into every alive spec replica via shielded
  // back-fill writes (client-written ranges are subtracted at apply time).
  void RunSpecBackfill(ChunkId chunk, std::shared_ptr<SpecPass> pass);
  // Fails the pass and schedules a retry after spec_retry_.
  void FailSpecPass(ChunkId chunk, std::shared_ptr<SpecPass> pass, Status s);
  // Cancels a state's in-flight pass (if any): late callbacks fall silent.
  void CancelSpecPass(SpecState* st);
  // Atomic commit: retires the shards, turns the spec replicas into the
  // chunk's replica set at view+1, and clears all speculation state.
  void CommitSpecPromote(ChunkId chunk, std::shared_ptr<SpecPass> pass);

  void NotifyTierChanged(ChunkId chunk, bool ec) {
    if (tier_changed_) {
      tier_changed_(chunk, ec);
    }
  }

  sim::Simulator* sim_;
  net::Transport* transport_;
  Placement placement_;
  std::vector<ChunkServer*> servers_;
  std::map<DiskId, DiskMeta> disks_;
  std::map<ChunkId, ChunkRef> chunk_refs_;
  DiskId next_disk_id_ = 1;
  ChunkId next_chunk_id_ = 1;
  Nanos lease_term_ = sec(30);
  uint64_t chunk_size_ = storage::kDefaultChunkSize;
  uint64_t recovery_piece_ = 1 * kMiB;
  int recovery_window_ = 8;
  bool recovery_carries_data_ = true;
  RecoveryStats recovery_stats_;
  std::set<ServerId> demoted_;  // health-demoted servers
  std::function<double(ServerId)> health_score_;  // null = binary demotion only
  double health_score_deadband_ = 1.5;
  scrub::RecoveryAdmission* admission_ = nullptr;  // null = watermark-only pacing

  // Tiering state (DESIGN.md §13).
  std::map<ChunkId, EcShardInfo> ec_shards_;  // shard chunk id -> (parent, index)
  std::map<std::pair<int, int>, std::unique_ptr<ec::ReedSolomon>> codecs_;
  std::set<ChunkId> migrating_;  // chunks with a demote/promote/shard repair in flight
  std::map<ChunkId, std::vector<std::function<void(Status)>>> promote_waiters_;
  tier::HeatTracker* heat_ = nullptr;
  Nanos migration_timeout_ = sec(10);
  TierStats tier_stats_;

  // Speculative promotion state (DESIGN.md §13.6). Keyed by parent chunk;
  // an entry exists exactly while the chunk's layout is speculating.
  bool speculative_promote_ = true;
  Nanos spec_retry_ = msec(100);
  std::map<ChunkId, std::unique_ptr<SpecState>> spec_;
  std::function<void(ChunkId, bool)> tier_changed_;
};

}  // namespace ursa::cluster

#endif  // URSA_CLUSTER_MASTER_H_
