#include "src/cluster/placement.h"

#include "src/common/logging.h"

namespace ursa::cluster {

Placement::Placement(std::vector<std::vector<ServerId>> primary_servers,
                     std::vector<std::vector<ServerId>> backup_servers)
    : primary_servers_(std::move(primary_servers)), backup_servers_(std::move(backup_servers)) {
  URSA_CHECK_EQ(primary_servers_.size(), backup_servers_.size());
  URSA_CHECK_GT(primary_servers_.size(), 0u);
  primary_cursor_.assign(primary_servers_.size(), 0);
  backup_cursor_.assign(backup_servers_.size(), 0);
}

Result<std::vector<ServerId>> Placement::PlaceChunk(uint64_t chunk_seq, int replication,
                                                    uint64_t salt) const {
  size_t machines = primary_servers_.size();
  if (static_cast<size_t>(replication) > machines) {
    return ResourceExhausted("replication factor exceeds machine count");
  }
  std::vector<ServerId> out;
  out.reserve(replication);

  // Rotate the starting machine per chunk so consecutive chunks of a striping
  // group spread across machines; the per-machine cursor rotates through the
  // machine's disks so chunks of one group never share a disk.
  size_t m0 = (chunk_seq + salt) % machines;

  const std::vector<ServerId>& primaries = primary_servers_[m0];
  if (primaries.empty()) {
    return ResourceExhausted("no primary-capable server on machine");
  }
  out.push_back(primaries[primary_cursor_[m0]++ % primaries.size()]);

  for (int r = 1; r < replication; ++r) {
    size_t m = (m0 + r) % machines;
    const std::vector<ServerId>& backups = backup_servers_[m];
    if (backups.empty()) {
      return ResourceExhausted("no backup server on machine");
    }
    out.push_back(backups[backup_cursor_[m]++ % backups.size()]);
  }
  return out;
}

Result<ServerId> Placement::PlaceReplacement(bool like_primary,
                                             const std::vector<MachineId>& exclude,
                                             uint64_t salt) const {
  size_t machines = primary_servers_.size();
  for (size_t i = 0; i < machines; ++i) {
    MachineId m = static_cast<MachineId>((salt + i) % machines);
    bool excluded = false;
    for (MachineId e : exclude) {
      if (e == m) {
        excluded = true;
        break;
      }
    }
    if (excluded) {
      continue;
    }
    const auto& pool = like_primary ? primary_servers_[m] : backup_servers_[m];
    if (!pool.empty()) {
      return pool[salt % pool.size()];
    }
  }
  // Fall back to any machine (co-location beats data loss), e.g. the paper's
  // small-testbed recovery to the SSD co-located with the failed one (§6.2).
  for (size_t i = 0; i < machines; ++i) {
    MachineId m = static_cast<MachineId>((salt + i) % machines);
    const auto& pool = like_primary ? primary_servers_[m] : backup_servers_[m];
    if (!pool.empty()) {
      return pool[(salt + 1) % pool.size()];
    }
  }
  return ResourceExhausted("no replacement server available");
}

MachineId Placement::MachineOf(ServerId server) const {
  for (size_t m = 0; m < primary_servers_.size(); ++m) {
    for (ServerId s : primary_servers_[m]) {
      if (s == server) {
        return static_cast<MachineId>(m);
      }
    }
    for (ServerId s : backup_servers_[m]) {
      if (s == server) {
        return static_cast<MachineId>(m);
      }
    }
  }
  URSA_LOG(FATAL) << "unknown server " << server;
  return 0;
}

}  // namespace ursa::cluster
