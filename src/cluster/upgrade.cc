#include "src/cluster/upgrade.h"

#include <memory>
#include <utility>

#include "src/common/logging.h"

namespace ursa::cluster {

void UpgradeCoordinator::UpgradeServer(ServerId server, const std::string& version,
                                       std::function<bool()> health_check,
                                       std::function<void(bool)> done) {
  ChunkServer* cs = cluster_->server(server);
  URSA_CHECK(cs != nullptr);
  // (i) close the service port: stop receiving new I/O requests.
  cs->SetDraining(true);
  // (ii) wait for all in-flight requests to complete. Bounded polling: if a
  // request wedges (it should not), we swap anyway after ~2 s, mirroring an
  // operational timeout.
  int polls = static_cast<int>(sec(2) / std::max<Nanos>(drain_poll_, 1));
  DrainThenSwap(server, version, std::move(health_check), std::move(done), polls);
}

void UpgradeCoordinator::DrainThenSwap(ServerId server, const std::string& version,
                                       std::function<bool()> health_check,
                                       std::function<void(bool)> done, int polls_left) {
  ChunkServer* cs = cluster_->server(server);
  if (cs->inflight_ops() > 0 && polls_left > 0) {
    sim_->After(drain_poll_, [this, server, version, health_check = std::move(health_check),
                              done = std::move(done), polls_left]() mutable {
      DrainThenSwap(server, version, std::move(health_check), std::move(done), polls_left - 1);
    });
    return;
  }
  // (iii) start the new version of the chunk server in a new process and
  // (iv) check whether it works correctly.
  sim_->After(swap_window_, [this, server, version, health_check = std::move(health_check),
                             done = std::move(done)]() {
    ChunkServer* cs2 = cluster_->server(server);
    bool healthy = !health_check || health_check();
    if (healthy) {
      // Old process closes its connections and exits; the new one serves.
      cs2->set_software_version(version);
      cs2->SetDraining(false);
      done(true);
    } else {
      // Hot upgrade failed (bad config, missing libraries, ...): the old
      // chunk server kills the new process, re-opens the port, and
      // continues its service unchanged.
      cs2->SetDraining(false);
      done(false);
    }
  });
}

void UpgradeCoordinator::UpgradeAllServers(const std::string& version,
                                           std::function<bool(ServerId)> health_check,
                                           std::function<void(UpgradeReport)> done) {
  auto report = std::make_shared<UpgradeReport>();
  auto next = std::make_shared<std::function<void(ServerId)>>();
  size_t total = cluster_->num_servers();
  *next = [this, version, health_check = std::move(health_check), done = std::move(done),
           report, next, total](ServerId id) mutable {
    if (id >= total) {
      done(*report);
      return;
    }
    UpgradeServer(
        id, version, [health_check, id]() { return !health_check || health_check(id); },
        [this, id, report, next](bool ok) {
          if (ok) {
            ++report->upgraded;
            report->log.push_back("server " + std::to_string(id) + ": upgraded");
          } else {
            ++report->rolled_back;
            report->log.push_back("server " + std::to_string(id) + ": rolled back");
          }
          // Confirm this upgrade behaves as expected before the next (§5.2).
          (*next)(id + 1);
        });
  };
  (*next)(0);
}

}  // namespace ursa::cluster
