#include "src/cluster/chunk_server.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/common/logging.h"
#include "src/tier/heat_tracker.h"

namespace ursa::cluster {

ChunkServer::ChunkServer(sim::Simulator* sim, net::Transport* transport, Machine* machine,
                         ServerId id, storage::ChunkStore* store,
                         journal::JournalManager* journal_manager, bool on_ssd,
                         const ChunkServerConfig& config)
    : sim_(sim),
      transport_(transport),
      machine_(machine),
      id_(id),
      store_(store),
      journal_manager_(journal_manager),
      on_ssd_(on_ssd),
      config_(config) {}

Status ChunkServer::AllocateChunk(ChunkId chunk, uint64_t view, uint64_t tenant) {
  URSA_RETURN_IF_ERROR(store_->Allocate(chunk));
  states_[chunk] = ReplicaState{0, view};
  if (tenant != 0) {
    chunk_tenants_[chunk] = tenant;
  }
  return OkStatus();
}

Status ChunkServer::FreeChunk(ChunkId chunk) {
  URSA_RETURN_IF_ERROR(store_->Free(chunk));
  states_.erase(chunk);
  chunk_tenants_.erase(chunk);
  scrub_quarantine_.erase(chunk);
  write_shield_.erase(chunk);
  if (checksums_ != nullptr) {
    checksums_->Drop(chunk);
  }
  return OkStatus();
}

std::vector<ChunkId> ChunkServer::HostedChunks() const {
  std::vector<ChunkId> chunks;
  chunks.reserve(states_.size());
  for (const auto& [chunk, state] : states_) {
    chunks.push_back(chunk);
  }
  return chunks;
}

void ChunkServer::AddScrubQuarantine(ChunkId chunk, uint64_t offset, uint64_t length) {
  scrub_quarantine_[chunk].emplace_back(offset, length);
}

void ChunkServer::ClearScrubQuarantine(ChunkId chunk, uint64_t offset, uint64_t length) {
  auto it = scrub_quarantine_.find(chunk);
  if (it == scrub_quarantine_.end()) {
    return;
  }
  auto& ranges = it->second;
  ranges.erase(std::remove_if(ranges.begin(), ranges.end(),
                              [offset, length](const std::pair<uint64_t, uint64_t>& r) {
                                return r.first < offset + length && offset < r.first + r.second;
                              }),
               ranges.end());
  if (ranges.empty()) {
    scrub_quarantine_.erase(it);
  }
}

bool ChunkServer::IsScrubQuarantined(ChunkId chunk, uint64_t offset, uint64_t length) const {
  auto it = scrub_quarantine_.find(chunk);
  if (it == scrub_quarantine_.end()) {
    return false;
  }
  for (const auto& [qoff, qlen] : it->second) {
    if (qoff < offset + length && offset < qoff + qlen) {
      return true;
    }
  }
  return false;
}

size_t ChunkServer::scrub_quarantine_size() const {
  size_t n = 0;
  for (const auto& [chunk, ranges] : scrub_quarantine_) {
    n += ranges.size();
  }
  return n;
}

uint64_t ChunkServer::TenantOf(ChunkId chunk) const {
  auto it = chunk_tenants_.find(chunk);
  return it == chunk_tenants_.end() ? 0 : it->second;
}

Result<ChunkServer::ReplicaState> ChunkServer::GetState(ChunkId chunk) const {
  auto it = states_.find(chunk);
  if (it == states_.end()) {
    return NotFound("no such chunk replica");
  }
  return it->second;
}

void ChunkServer::SetState(ChunkId chunk, uint64_t version, uint64_t view) {
  states_[chunk] = ReplicaState{version, view};
}

void ChunkServer::SetView(ChunkId chunk, uint64_t view) {
  auto it = states_.find(chunk);
  if (it != states_.end()) {
    // Unlike SetState, preserves version AND last_write_id: a view bump that
    // clears the write-identity would make an in-flight retry of the last
    // committed write look like a different write reusing its version.
    it->second.view = view;
  }
}

void ChunkServer::RegisterMetrics(obs::MetricsRegistry* registry) {
  obs::Labels labels{{"server", std::to_string(id_)}};
  registry->RegisterCallbackCounter("server.reads_served", labels,
                                    [this]() { return static_cast<double>(reads_served_); });
  registry->RegisterCallbackCounter("server.writes_served", labels,
                                    [this]() { return static_cast<double>(writes_served_); });
  registry->RegisterCallbackCounter(
      "server.replicates_served", labels,
      [this]() { return static_cast<double>(replicates_served_); });
  registry->RegisterCallbackGauge("server.inflight_ops", labels,
                                  [this]() { return static_cast<double>(inflight_ops_); });
}

void ChunkServer::BackupWrite(ChunkId chunk, uint64_t offset, uint64_t length, uint64_t version,
                              ursa::BufferView data, storage::IoCallback done,
                              const obs::SpanRef& span, storage::IoTag tag) {
  if (journal_manager_ != nullptr) {
    journal_manager_->Write(chunk, offset, length, version, std::move(data), std::move(done),
                            span, tag);
  } else if (span != nullptr) {
    Nanos entered = sim_->Now();
    store_->Write(chunk, offset, length, std::move(data),
                  [this, span, entered, done = std::move(done)](const Status& s) {
                    span->RecordStage(obs::Stage::kBackupJournal, sim_->Now() - entered);
                    done(s);
                  },
                  tag);
  } else {
    store_->Write(chunk, offset, length, std::move(data), std::move(done), tag);
  }
}

void ChunkServer::BackupRead(ChunkId chunk, uint64_t offset, uint64_t length, void* out,
                             storage::IoCallback done, storage::IoTag tag) {
  if (journal_manager_ != nullptr) {
    journal_manager_->Read(chunk, offset, length, out, std::move(done), tag);
  } else {
    store_->Read(chunk, offset, length, out, std::move(done), tag);
  }
}

void ChunkServer::HandleRead(ChunkId chunk, uint64_t offset, uint64_t length, uint64_t view,
                             uint64_t expected_version, void* out, ReadCallback done_arg,
                             const obs::SpanRef& span) {
  if (crashed_ || draining_) {
    return;  // silence; the client's timeout machinery reacts
  }
  auto done = TrackOp(std::move(done_arg));
  machine_->BurnCpu(config_.cpu.server_background);
  Nanos entered = sim_->Now();
  machine_->RunOnCpu(config_.cpu.server_op, [this, chunk, offset, length, view, expected_version,
                                             out, entered, span,
                                             done = std::move(done)]() mutable {
    if (span != nullptr) {
      span->RecordStage(obs::Stage::kServerCpu, sim_->Now() - entered);
    }
    auto it = states_.find(chunk);
    if (it == states_.end()) {
      done(NotFound("chunk not hosted here"), 0);
      return;
    }
    const ReplicaState& st = it->second;
    if (st.view != view) {
      done(VersionMismatch("stale view"), st.version);
      return;
    }
    if (st.version < expected_version) {
      // Stale replica: it has not executed writes the client already knows
      // committed. A replica AHEAD of the client's number is fine — the disk
      // has a single writer (§4.1), so any newer version is this client's own
      // pipelined write, already committed or in flight from this client.
      done(VersionMismatch("replica version is stale"), st.version);
      return;
    }
    if (IsScrubQuarantined(chunk, offset, length)) {
      // Known-bad bytes are never served; repair (already in flight) clears
      // the quarantine once fresh bytes land.
      done(Corruption("range quarantined by scrub"), st.version);
      return;
    }
    ++reads_served_;
    if (heat_ != nullptr) {
      heat_->RecordRead(chunk, length);
    }
    uint64_t version = st.version;
    Nanos io_start = sim_->Now();
    auto io_done = [this, span, io_start, done = std::move(done), version](const Status& s) {
      if (span != nullptr) {
        span->RecordStage(obs::Stage::kPrimaryStorage, sim_->Now() - io_start);
      }
      done(s, version);
    };
    storage::IoTag tag{qos::ServiceClass::kForegroundRead, TenantOf(chunk)};
    if (on_ssd_ && journal_manager_ == nullptr) {
      store_->Read(chunk, offset, length, out, std::move(io_done), tag);
    } else {
      BackupRead(chunk, offset, length, out, std::move(io_done), tag);
    }
  });
}

void ChunkServer::HandleWrite(ChunkId chunk, uint64_t offset, uint64_t length, uint64_t view,
                              uint64_t version, ursa::BufferView data,
                              std::vector<ReplicaRef> backups, WriteCallback done_arg,
                              const obs::SpanRef& span, uint64_t write_id) {
  if (crashed_ || draining_) {
    return;
  }
  auto done = TrackOp(std::move(done_arg));
  machine_->BurnCpu(config_.cpu.server_background);
  Nanos entered = sim_->Now();
  machine_->RunOnCpu(config_.cpu.server_op + config_.cpu.server_write_extra,
                     [this, chunk, offset, length, view, version, data, entered, span, write_id,
                      backups = std::move(backups), done = std::move(done)]() mutable {
    if (span != nullptr) {
      span->RecordStage(obs::Stage::kServerCpu, sim_->Now() - entered);
    }
    auto it = states_.find(chunk);
    if (it == states_.end()) {
      done(NotFound("chunk not hosted here"), 0);
      return;
    }
    ReplicaState& st = it->second;
    if (st.view != view) {
      done(VersionMismatch("stale view"), st.version);
      return;
    }
    bool skip_local = false;
    if (version == st.version) {
      // Normal case: execute locally and advance the version.
      st.version = version + 1;
      st.last_write_id = write_id;
      auto shield = write_shield_.find(chunk);
      if (shield != write_shield_.end()) {
        // Speculative promotion target: remember the client-written range so
        // the back-fill never overwrites it with reconstructed old data.
        InsertInterval(&shield->second, Interval{offset, length});
      }
    } else if (version + 1 == st.version &&
               (write_id == 0 || write_id == st.last_write_id)) {
      // Already executed (client retry after partial failure): skip the
      // local write but still forward to backups (§4.2.1).
      skip_local = true;
    } else if (version + 1 == st.version) {
      // A DIFFERENT write reusing the version of one that failed at the
      // client. Acking it would lose its data; make the client resync.
      done(VersionMismatch("stale client version; resync required"), st.version);
      return;
    } else {
      done(VersionMismatch("version gap; repair required"), st.version);
      return;
    }
    ++writes_served_;
    if (heat_ != nullptr) {
      heat_->RecordWrite(chunk, length);
      heat_->BeginWrite(chunk);
    }
    uint64_t new_version = version + 1;
    journal_lite_.Record(chunk, new_version, offset, length);

    int total = 1 + static_cast<int>(backups.size());
    int majority = total / 2 + 1;
    auto tracker = std::make_shared<net::QuorumTracker>(
        total, majority,
        [this, chunk, done = std::move(done), new_version](const Status& s, int, int) {
          if (heat_ != nullptr) {
            heat_->EndWrite(chunk);
          }
          done(s, new_version);
        });
    // Authorize majority commit after the timeout (§4.1 step 6).
    sim::EventId timeout_event =
        sim_->After(config_.majority_commit_timeout, [tracker]() { tracker->TimeoutExpired(); });
    auto leg = [this, tracker, timeout_event](const Status& s) {
      if (s.ok()) {
        tracker->RecordSuccess();
      } else {
        tracker->RecordFailure();
      }
      if (tracker->decided()) {
        sim_->Cancel(timeout_event);
      }
    };

    // Local chunk write (LCW). The primary's device time is its own stage so
    // the trace separates it from the parallel backup legs.
    storage::IoCallback local_leg = leg;
    if (span != nullptr) {
      Nanos io_start = sim_->Now();
      local_leg = [this, span, io_start, leg](const Status& s) {
        span->RecordStage(obs::Stage::kPrimaryStorage, sim_->Now() - io_start);
        leg(s);
      };
    }
    storage::IoTag tag{qos::ServiceClass::kForegroundWrite, TenantOf(chunk)};
    if (!skip_local && checksums_ != nullptr) {
      checksums_->OnWrite(chunk, offset, length, data.data());
    }
    if (skip_local) {
      sim_->After(0, [local_leg]() { local_leg(OkStatus()); });
    } else if (journal_manager_ != nullptr) {
      BackupWrite(chunk, offset, length, new_version, data, local_leg, {}, tag);
    } else {
      store_->Write(chunk, offset, length, data, local_leg, tag);
    }

    // Parallel replication to backups over the network. The shared span
    // max-merges the backup legs' journal appends against the local write.
    // Each backup counts toward the quorum at most once: under chaos a
    // request or reply can be duplicated in flight, and double-counting one
    // backup's ack could commit a write that only a minority holds.
    auto leg_fired = std::make_shared<std::vector<bool>>(backups.size(), false);
    for (size_t b = 0; b < backups.size(); ++b) {
      const ReplicaRef& backup = backups[b];
      auto leg_once = [leg, leg_fired, b](const Status& s) {
        if ((*leg_fired)[b]) {
          return;
        }
        (*leg_fired)[b] = true;
        leg(s);
      };
      // Small replication legs (and their acks) coalesce: concurrent small
      // writes to the same backup share one framed wire message.
      bool coalesce =
          config_.coalesce_max_bytes != 0 && length <= config_.coalesce_max_bytes;
      uint64_t wire = net::WireBytes(net::MessageType::kReplicate, length);
      auto deliver = [this, backup, chunk, offset, length, view, version, data, leg_once,
                      span, write_id, coalesce]() {
        ChunkServer* server = resolver_(backup.server);
        if (server == nullptr) {
          leg_once(Unavailable("backup server gone"));
          return;
        }
        server->HandleReplicate(
            chunk, offset, length, view, version, data,
            [this, backup, leg_once, coalesce](const Status& s, uint64_t) {
              // Reply travels back over the network.
              uint64_t rwire = net::WireBytes(net::MessageType::kReplicateReply);
              auto reply = [leg_once, s]() { leg_once(s); };
              if (coalesce) {
                transport_->SendCoalesced(backup.node, node(), rwire, std::move(reply));
              } else {
                transport_->Send(backup.node, node(), rwire, std::move(reply));
              }
            },
            span, write_id);
      };
      if (coalesce) {
        transport_->SendCoalesced(node(), backup.node, wire, std::move(deliver));
      } else {
        transport_->Send(node(), backup.node, wire, std::move(deliver));
      }
    }
  });
}

void ChunkServer::HandleReplicate(ChunkId chunk, uint64_t offset, uint64_t length, uint64_t view,
                                  uint64_t version, ursa::BufferView data, WriteCallback done_arg,
                                  const obs::SpanRef& span, uint64_t write_id) {
  if (crashed_ || draining_) {
    return;
  }
  auto done = TrackOp(std::move(done_arg));
  machine_->BurnCpu(config_.cpu.server_background);
  Nanos entered = sim_->Now();
  machine_->RunOnCpu(
      config_.cpu.server_op + config_.cpu.replicate_op + config_.cpu.server_write_extra,
      [this, chunk, offset, length, view, version, data, entered, span, write_id,
       done = std::move(done)]() mutable {
        if (span != nullptr) {
          span->RecordStage(obs::Stage::kServerCpu, sim_->Now() - entered);
        }
        auto it = states_.find(chunk);
        if (it == states_.end()) {
          done(NotFound("chunk not hosted here"), 0);
          return;
        }
        ReplicaState& st = it->second;
        if (st.view != view) {
          done(VersionMismatch("stale view"), st.version);
          return;
        }
        if (version + 1 == st.version && (write_id == 0 || write_id == st.last_write_id)) {
          done(OkStatus(), st.version);  // duplicate delivery of the applied write
          return;
        }
        if (version + 1 == st.version) {
          // Different write reusing a failed predecessor's version (see
          // HandleWrite): acking without writing would lose its data.
          done(VersionMismatch("stale client version; resync required"), st.version);
          return;
        }
        if (version != st.version) {
          done(VersionMismatch("version gap; repair required"), st.version);
          return;
        }
        st.version = version + 1;
        st.last_write_id = write_id;
        auto shield = write_shield_.find(chunk);
        if (shield != write_shield_.end()) {
          InsertInterval(&shield->second, Interval{offset, length});
        }
        ++replicates_served_;
        if (heat_ != nullptr) {
          heat_->RecordWrite(chunk, length);
          heat_->BeginWrite(chunk);
        }
        uint64_t new_version = st.version;
        journal_lite_.Record(chunk, new_version, offset, length);
        if (checksums_ != nullptr) {
          checksums_->OnWrite(chunk, offset, length, data.data());
        }
        BackupWrite(chunk, offset, length, new_version, data,
                    [this, chunk, done = std::move(done), new_version](const Status& s) {
                      if (heat_ != nullptr) {
                        heat_->EndWrite(chunk);
                      }
                      done(s, new_version);
                    },
                    span, storage::IoTag{qos::ServiceClass::kForegroundWrite, TenantOf(chunk)});
      });
}

void ChunkServer::HandleVersionQuery(ChunkId chunk, StateCallback done) {
  if (crashed_ || draining_) {
    return;
  }
  machine_->RunOnCpu(config_.cpu.server_op, [this, chunk, done = std::move(done)]() mutable {
    auto it = states_.find(chunk);
    if (it == states_.end()) {
      done(NotFound("chunk not hosted here"), ReplicaState{});
      return;
    }
    done(OkStatus(), it->second);
  });
}

void ChunkServer::HandleRecoveryRead(ChunkId chunk, uint64_t offset, uint64_t length, void* out,
                                     ReadCallback done, qos::ServiceClass cls) {
  if (crashed_) {
    return;
  }
  machine_->RunOnCpu(config_.cpu.server_op, [this, chunk, offset, length, out, cls,
                                             done = std::move(done)]() mutable {
    auto it = states_.find(chunk);
    if (it == states_.end()) {
      done(NotFound("chunk not hosted here"), 0);
      return;
    }
    uint64_t version = it->second.version;
    if (IsScrubQuarantined(chunk, offset, length)) {
      // A replica with known-bad bytes in range is never a repair source.
      done(Corruption("range quarantined by scrub"), version);
      return;
    }
    BackupRead(chunk, offset, length, out,
               [done = std::move(done), version](const Status& s) { done(s, version); },
               storage::IoTag{cls, TenantOf(chunk)});
  });
}

void ChunkServer::HandleRecoveryWrite(ChunkId chunk, uint64_t offset, uint64_t length,
                                      ursa::BufferView data, storage::IoCallback done,
                                      qos::ServiceClass cls) {
  if (crashed_) {
    return;
  }
  machine_->RunOnCpu(config_.cpu.server_op,
                     [this, chunk, offset, length, cls, data = std::move(data),
                      done = std::move(done)]() mutable {
                       if (!store_->Contains(chunk)) {
                         done(NotFound("recovery target chunk not allocated"));
                         return;
                       }
                       if (checksums_ != nullptr) {
                         checksums_->OnWrite(chunk, offset, length, data.data());
                       }
                       // Fresh bytes heal whatever scrub flagged in range.
                       ClearScrubQuarantine(chunk, offset, length);
                       store_->Write(chunk, offset, length, std::move(data), std::move(done),
                                     storage::IoTag{cls, TenantOf(chunk)});
                     });
}

void ChunkServer::HandleBackfillWrite(ChunkId chunk, uint64_t offset, uint64_t length,
                                      ursa::BufferView data, storage::IoCallback done,
                                      qos::ServiceClass cls) {
  if (crashed_) {
    return;
  }
  machine_->RunOnCpu(config_.cpu.server_op, [this, chunk, offset, length, cls,
                                             data = std::move(data),
                                             done = std::move(done)]() mutable {
    if (!store_->Contains(chunk)) {
      done(NotFound("back-fill target chunk not allocated"));
      return;
    }
    // Subtract the shield INSIDE this event: every client write applied so
    // far is in the shield, and no new one can interleave before the pieces
    // below are submitted, so old bytes never land over newer client bytes.
    std::vector<Interval> pieces{Interval{offset, length}};
    auto shield = write_shield_.find(chunk);
    if (shield != write_shield_.end()) {
      pieces = SubtractAll(Interval{offset, length}, shield->second);
    }
    if (pieces.empty()) {
      sim_->After(0, [done = std::move(done)]() { done(OkStatus()); });
      return;
    }
    auto remaining = std::make_shared<size_t>(pieces.size());
    auto first_error = std::make_shared<Status>();
    auto held = std::make_shared<storage::IoCallback>(std::move(done));
    auto join = [remaining, first_error, held](const Status& s) {
      if (!s.ok() && first_error->ok()) {
        *first_error = s;
      }
      if (--*remaining == 0) {
        (*held)(*first_error);
      }
    };
    storage::IoTag tag{cls, TenantOf(chunk)};
    for (const Interval& p : pieces) {
      ursa::BufferView piece_data = data.Slice(p.offset - offset, p.length);
      if (checksums_ != nullptr) {
        checksums_->OnWrite(chunk, p.offset, p.length, piece_data.data());
      }
      // Fresh bytes heal whatever scrub flagged in range.
      ClearScrubQuarantine(chunk, p.offset, p.length);
      store_->Write(chunk, p.offset, p.length, piece_data, join, tag);
    }
  });
}

}  // namespace ursa::cluster
