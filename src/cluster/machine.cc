#include "src/cluster/machine.h"

namespace ursa::cluster {

Machine::Machine(sim::Simulator* sim, net::Transport* transport, MachineId id,
                 const MachineConfig& config)
    : sim_(sim), id_(id), name_("m" + std::to_string(id)) {
  node_ = transport->AddNode(name_, config.net);
  cpu_ = std::make_unique<sim::Resource>(sim, name_ + "/cpu", config.cores);
  ssds_.reserve(config.ssds);
  for (int i = 0; i < config.ssds; ++i) {
    ssds_.push_back(std::make_unique<storage::SsdModel>(sim, config.ssd,
                                                        name_ + "/ssd" + std::to_string(i)));
  }
  hdds_.reserve(config.hdds);
  for (int i = 0; i < config.hdds; ++i) {
    hdds_.push_back(std::make_unique<storage::HddModel>(sim, config.hdd));
  }
}

}  // namespace ursa::cluster
