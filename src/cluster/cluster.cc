#include "src/cluster/cluster.h"

#include <utility>

#include "src/common/logging.h"

namespace ursa::cluster {

Cluster::Cluster(sim::Simulator* sim, const ClusterConfig& config)
    : sim_(sim), config_(config), tracer_(static_cast<uint32_t>(config.trace_sample_every)) {
  transport_ = std::make_unique<net::Transport>(sim);
  transport_->RegisterMetrics(&metrics_);

  if (config.health.enabled) {
    // Built before the machines so Build*Machine can register devices.
    health_ = std::make_unique<obs::HealthMonitor>(sim, config.health, &metrics_);
  }

  primary_pool_.resize(config.machines);
  backup_pool_.resize(config.machines);

  for (int m = 0; m < config.machines; ++m) {
    machines_.push_back(std::make_unique<Machine>(sim, transport_.get(),
                                                  static_cast<MachineId>(m), config.machine));
    Machine* machine = machines_.back().get();
    if (config.qos.enabled) {
      // One scheduler gate per device, attached before any server issues I/O.
      for (int i = 0; i < machine->num_ssds(); ++i) {
        schedulers_.push_back(std::make_unique<qos::IoScheduler>(
            sim, &machine->ssd(i), config.qos, config.qos.ssd_depth,
            machine->name() + "/ssd" + std::to_string(i), &metrics_));
      }
      for (int i = 0; i < machine->num_hdds(); ++i) {
        schedulers_.push_back(std::make_unique<qos::IoScheduler>(
            sim, &machine->hdd(i), config.qos, config.qos.hdd_depth,
            machine->name() + "/hdd" + std::to_string(i), &metrics_));
      }
    }
    switch (config.mode) {
      case StorageMode::kHybrid:
        BuildHybridMachine(machine);
        break;
      case StorageMode::kSsdOnly:
        BuildFlatMachine(machine, /*on_ssd=*/true);
        break;
      case StorageMode::kHddOnly:
        BuildFlatMachine(machine, /*on_ssd=*/false);
        break;
    }
  }

  std::vector<ChunkServer*> server_ptrs;
  server_ptrs.reserve(servers_.size());
  for (auto& s : servers_) {
    server_ptrs.push_back(s.get());
  }
  master_ = std::make_unique<Master>(sim, transport_.get(),
                                     Placement(primary_pool_, backup_pool_), server_ptrs);
  master_->set_chunk_size(config.chunk_size);
  master_->RegisterMetrics(&metrics_);

  if (health_ != nullptr) {
    // Continuous health weighting (DESIGN.md §11): the master breaks replica-
    // rank ties with the live numeric score, so a *suspect* device sheds read
    // preference before the binary demotion flag ever flips.
    master_->SetHealthScoreProvider(
        [this](ServerId sid) { return HealthScoreOfServer(sid); });
    // Close the detection loop: degraded devices demote their server's
    // replicas at the master; recovering to healthy restores them. Every
    // transition — including healthy->suspect — also re-weights layouts under
    // the current scores (transition boundaries are exactly when scores have
    // moved enough to matter; re-sorting every scoring pass would churn
    // views).
    health_->SetTransitionHandler(
        [this](obs::HealthMonitor::DeviceId d, obs::HealthState from, obs::HealthState to) {
          ServerId sid = health_device_server_[d];
          if (to == obs::HealthState::kDegraded) {
            master_->SetServerDemoted(sid, true);
          } else if (from == obs::HealthState::kDegraded &&
                     to == obs::HealthState::kHealthy) {
            master_->SetServerDemoted(sid, false);
          }
          master_->OnHealthScoresChanged();
        });
    health_->Start();
  }

  if (config.admission.enabled) {
    // Cluster-wide per-source transfer pacing, shared by every transfer kind
    // the master issues (DESIGN.md §11).
    admission_ = std::make_unique<scrub::RecoveryAdmission>(sim, config.admission);
    master_->SetAdmission(admission_.get());
    scrub::RecoveryAdmission* adm = admission_.get();
    metrics_.RegisterCallbackCounter("admission.grants", {},
                                     [adm] { return static_cast<double>(adm->grants()); });
    metrics_.RegisterCallbackCounter("admission.waits", {},
                                     [adm] { return static_cast<double>(adm->waits()); });
    metrics_.RegisterCallbackCounter(
        "admission.scrub_yields", {},
        [adm] { return static_cast<double>(adm->scrub_yields()); });
    metrics_.RegisterCallbackGauge(
        "admission.queued", {}, [adm] { return static_cast<double>(adm->QueuedTotal()); });
    metrics_.RegisterCallbackGauge(
        "admission.peak_in_flight", {},
        [adm] { return static_cast<double>(adm->peak_in_flight()); });
  }

  if (config.slo.enabled && config.qos.enabled) {
    std::vector<qos::IoScheduler*> scheduler_ptrs;
    scheduler_ptrs.reserve(schedulers_.size());
    for (auto& s : schedulers_) {
      scheduler_ptrs.push_back(s.get());
    }
    slo_ = std::make_unique<qos::SloMonitor>(sim, config.slo, std::move(scheduler_ptrs),
                                             &metrics_);
    slo_->Start();
  }

  // Servers resolve each other through the registry (replication fan-out).
  for (auto& s : servers_) {
    s->set_resolver([this](ServerId id) -> ChunkServer* {
      if (id >= servers_.size()) {
        return nullptr;
      }
      ChunkServer* server = servers_[id].get();
      return server->crashed() ? nullptr : server;
    });
  }

  // CRC-detected journal corruption heals through the master: quarantine the
  // range (the manager already did), re-replicate it from a healthy replica,
  // then lift the quarantine. Wired here because the master is built last.
  for (auto& s : servers_) {
    journal::JournalManager* jm = s->journal_manager();
    if (jm == nullptr) {
      continue;
    }
    ServerId sid = s->id();
    jm->SetCorruptionHandler([this, sid](storage::ChunkId chunk, uint64_t offset,
                                         uint64_t length, std::function<void()> healed) {
      // Retry until a healthy source exists: during a partition or multi-
      // fault window every peer may be unreachable, and giving up would
      // strand the quarantine (reads would fail kCorruption forever). A
      // NotFound is terminal, not transient: replay scans can quarantine a
      // record whose decoded chunk id is itself garbage (corrupt header), and
      // no amount of retrying repairs a chunk the master never allocated.
      auto attempt = std::make_shared<std::function<void()>>();
      *attempt = [this, sid, chunk, offset, length, healed = std::move(healed), attempt]() {
        master_->RepairCorruptRange(chunk, sid, offset, length,
                                    [this, healed, attempt](Status s2) {
                                      if (s2.ok()) {
                                        healed();
                                      } else if (s2.code() != StatusCode::kNotFound) {
                                        sim_->After(msec(100), *attempt);
                                      }
                                    });
      };
      (*attempt)();
    });
  }

  if (config.scrub.enabled) {
    // Per-server checksum ledgers + scrub executors, and the master-side
    // coordinator driving them (DESIGN.md §11).
    for (auto& s : servers_) {
      ChunkServer* server = s.get();
      checksum_stores_.push_back(std::make_unique<scrub::ChecksumStore>(config.chunk_size));
      server->SetChecksumStore(checksum_stores_.back().get());

      scrub::Scrubber::Hooks hooks;
      hooks.read = [this, server](storage::ChunkId chunk, uint64_t offset, uint64_t length,
                                  void* out, std::function<void(const Status&)> done) {
        if (server->crashed()) {
          // A crashed server drops requests silently; fail fast instead of
          // hanging the coordinator's in-flight slot.
          sim_->After(0, [done = std::move(done)] { done(Unavailable("server crashed")); });
          return;
        }
        server->HandleRecoveryRead(
            chunk, offset, length, out,
            [done = std::move(done)](const Status& s2, uint64_t) { done(s2); },
            qos::ServiceClass::kScrub);
      };
      hooks.verify = [server](storage::ChunkId chunk, uint64_t offset, uint64_t length,
                              const void* data) {
        return server->checksum_store()->Verify(chunk, offset, length, data);
      };
      hooks.generation = [server](storage::ChunkId chunk) {
        return server->checksum_store()->generation(chunk);
      };
      hooks.rearm = [server](storage::ChunkId chunk, uint64_t offset, uint64_t length,
                             const void* data, uint64_t expected_generation) {
        return server->checksum_store()->Rearm(chunk, offset, length, data,
                                               expected_generation);
      };
      hooks.report = [this, server](storage::ChunkId chunk, uint64_t offset, uint64_t length) {
        // A mismatch can be a benign race: a write landing during the
        // scrubber's bulk read leaves fresh checksums in the ledger but stale
        // bytes in the scrub buffer. Confirm with a targeted re-read of just
        // the flagged run before quarantining — at-rest damage reproduces, a
        // racing write verifies clean on the second look.
        if (server->crashed()) {
          return;  // next sweep re-checks after restore
        }
        auto buf = std::make_shared<std::vector<uint8_t>>(length);
        server->HandleRecoveryRead(
            chunk, offset, length, buf->data(),
            [this, server, chunk, offset, length, buf](const Status& s, uint64_t) {
              if (!s.ok()) {
                // Journal-CRC failures already quarantined + kicked repair on
                // their own path; anything else retries next sweep.
                return;
              }
              if (server->checksum_store()->Verify(chunk, offset, length, buf->data()).ok) {
                return;  // racing write, not corruption
              }
              // Scrub hit: quarantine first (no client ever reads the damaged
              // bytes), then re-replicate the range from a healthy peer — the
              // same pipeline a read-detected journal corruption takes. The
              // recovery write landing at this server lifts the quarantine.
              ++scrub_mismatches_reported_;
              server->AddScrubQuarantine(chunk, offset, length);
              ServerId sid = server->id();
              auto attempt = std::make_shared<std::function<void()>>();
              *attempt = [this, sid, chunk, offset, length, attempt]() {
                master_->RepairCorruptRange(chunk, sid, offset, length,
                                            [this, attempt](Status s2) {
                                              if (s2.ok()) {
                                                ++scrub_repairs_completed_;
                                              } else if (s2.code() != StatusCode::kNotFound) {
                                                sim_->After(msec(100), *attempt);
                                              }
                                            });
              };
              (*attempt)();
            },
            qos::ServiceClass::kScrub);
      };
      scrubbers_.push_back(
          std::make_unique<scrub::Scrubber>(sim, config.scrub, std::move(hooks)));
    }

    metrics_.RegisterCallbackCounter("scrub.mismatches_reported", {}, [this] {
      return static_cast<double>(scrub_mismatches_reported_);
    });
    metrics_.RegisterCallbackCounter("scrub.repairs_completed", {}, [this] {
      return static_cast<double>(scrub_repairs_completed_);
    });
    metrics_.RegisterCallbackCounter("scrub.bytes_read", {}, [this] {
      uint64_t total = 0;
      for (const auto& sc : scrubbers_) {
        total += sc->bytes_read();
      }
      return static_cast<double>(total);
    });
    metrics_.RegisterCallbackCounter("scrub.read_errors", {}, [this] {
      uint64_t total = 0;
      for (const auto& sc : scrubbers_) {
        total += sc->read_errors();
      }
      return static_cast<double>(total);
    });
    metrics_.RegisterCallbackCounter("scrub.sectors_rearmed", {}, [this] {
      uint64_t total = 0;
      for (const auto& sc : scrubbers_) {
        total += sc->sectors_rearmed();
      }
      return static_cast<double>(total);
    });

    scrub::ScrubCoordinator::Hooks chooks;
    chooks.list_chunks = [this] {
      std::vector<scrub::ScrubCoordinator::ChunkInfo> out;
      for (const Master::ChunkPlacement& p : master_->ListChunks()) {
        scrub::ScrubCoordinator::ChunkInfo info;
        info.chunk = p.chunk;
        info.size = p.size;
        info.servers.assign(p.servers.begin(), p.servers.end());
        out.push_back(std::move(info));
      }
      return out;
    };
    chooks.health_score = [this](uint64_t sid) {
      return HealthScoreOfServer(static_cast<ServerId>(sid));
    };
    chooks.server_unavailable = [this](uint64_t sid) {
      ChunkServer* server = servers_[sid].get();
      return server->crashed() || server->draining();
    };
    chooks.scrub = [this](storage::ChunkId chunk, uint64_t sid, uint64_t size,
                          std::function<void(scrub::Scrubber::ChunkResult)> done) {
      scrubbers_[sid]->ScrubChunk(chunk, size, std::move(done));
    };
    scrub_coordinator_ = std::make_unique<scrub::ScrubCoordinator>(
        sim, config.scrub, std::move(chooks), &metrics_);
    scrub_coordinator_->Start();
  }

  if (config.tier.enabled) {
    // Tiered placement (DESIGN.md §13): chunk servers feed per-chunk heat;
    // the migrator scans it and drives demote/promote through the master.
    heat_ = std::make_unique<tier::HeatTracker>(sim, config.tier.heat_half_life);
    heat_->RegisterMetrics(&metrics_);
    for (auto& s : servers_) {
      s->SetHeatTracker(heat_.get());
    }
    master_->SetHeatTracker(heat_.get());

    tier::TierHooks thooks;
    thooks.list_chunks = [this] {
      std::vector<tier::TierChunkView> out;
      for (const Master::TierChunkInfo& info : master_->ListTierChunks()) {
        out.push_back(tier::TierChunkView{info.chunk, info.ec});
      }
      return out;
    };
    int ec_k = config.tier.ec_k;
    int ec_m = config.tier.ec_m;
    thooks.demote = [this, ec_k, ec_m](uint64_t chunk, std::function<void(bool)> done) {
      master_->DemoteChunkToEc(static_cast<ChunkId>(chunk), ec_k, ec_m,
                               [done = std::move(done)](Status s) { done(s.ok()); });
    };
    thooks.promote = [this](uint64_t chunk, std::function<void(bool)> done) {
      master_->PromoteChunk(static_cast<ChunkId>(chunk), /*write_triggered=*/false,
                            [done = std::move(done)](Status s) { done(s.ok()); });
    };
    master_->set_speculative_promote(config.tier.speculative_promote);
    tier_migrator_ =
        std::make_unique<tier::TierMigrator>(sim, config.tier, heat_.get(), std::move(thooks));
    tier_migrator_->RegisterMetrics(&metrics_);
    // Tier commits (and master restores) re-key the migrator's heat-indexed
    // candidate queues; heat touches re-key through the tracker's listener.
    master_->SetTierChangeListener([this](ChunkId chunk, bool ec) {
      if (tier_migrator_ != nullptr) {
        tier_migrator_->OnTierChanged(chunk, ec);
      }
    });
    tier_migrator_->Start();
  }

  for (journal::JournalManager* jm : journal_manager_ptrs_) {
    jm->StartReplay();
  }
}

Cluster::~Cluster() = default;

double Cluster::HealthScoreOfServer(ServerId server) const {
  if (health_ == nullptr || server >= server_health_device_.size()) {
    return 0.0;
  }
  int64_t device = server_health_device_[server];
  if (device < 0) {
    return 0.0;
  }
  return health_->score(static_cast<obs::HealthMonitor::DeviceId>(device));
}

void Cluster::RegisterHealthDevice(storage::BlockDevice* device, std::string name,
                                   std::string group, ServerId server) {
  if (health_ == nullptr) {
    return;
  }
  obs::HealthMonitor::DeviceId id =
      health_->RegisterDevice(std::move(name), std::move(group));
  URSA_CHECK_EQ(static_cast<size_t>(id), health_device_server_.size());
  health_device_server_.push_back(server);
  if (server >= server_health_device_.size()) {
    server_health_device_.resize(server + 1, -1);
  }
  server_health_device_[server] = static_cast<int64_t>(id);
  device->SetLatencyObserver(
      [hm = health_.get(), id](qos::ServiceClass cls, storage::IoType, Nanos latency) {
        hm->RecordLatency(id, cls, latency);
      });
}

ChunkServer* Cluster::MakeServer(Machine* machine, storage::ChunkStore* store,
                                 journal::JournalManager* jm, bool on_ssd) {
  auto server = std::make_unique<ChunkServer>(sim_, transport_.get(), machine,
                                              static_cast<ServerId>(servers_.size()), store, jm,
                                              on_ssd, config_.server);
  server->RegisterMetrics(&metrics_);
  servers_.push_back(std::move(server));
  return servers_.back().get();
}

void Cluster::BuildHybridMachine(Machine* machine) {
  MachineId m = machine->id();
  int nssd = machine->num_ssds();
  int nhdd = machine->num_hdds();
  URSA_CHECK_GT(nssd, 0);
  URSA_CHECK_GT(nhdd, 0);

  // Journal regions live at the top of each SSD: the quota (1/10 capacity)
  // is split among the backup HDDs journaling to that SSD (primary regions)
  // plus the ones expanding to it.
  uint64_t ssd_capacity = machine->ssd(0).capacity();
  uint64_t quota = static_cast<uint64_t>(static_cast<double>(ssd_capacity) *
                                         config_.journal_quota_fraction);
  int regions_per_ssd = (nhdd + nssd - 1) / nssd;  // primary regions
  if (config_.enable_expansion_journal) {
    regions_per_ssd *= 2;
  }
  uint64_t region_bytes = quota / regions_per_ssd;
  region_bytes -= region_bytes % journal::kSector;
  uint64_t chunk_region = ssd_capacity - quota;

  // One primary-capable server per SSD.
  std::vector<storage::ChunkStore*> ssd_stores;
  for (int i = 0; i < nssd; ++i) {
    stores_.push_back(std::make_unique<storage::ChunkStore>(&machine->ssd(i),
                                                            config_.chunk_size, 0, chunk_region));
    ssd_stores.push_back(stores_.back().get());
    ChunkServer* server = MakeServer(machine, ssd_stores.back(), nullptr, /*on_ssd=*/true);
    primary_pool_[m].push_back(server->id());
    RegisterHealthDevice(&machine->ssd(i), machine->name() + "/ssd" + std::to_string(i), "ssd",
                         server->id());
  }

  // One backup server per HDD with a journal manager.
  std::vector<uint64_t> ssd_journal_cursor(nssd, chunk_region);
  for (int k = 0; k < nhdd; ++k) {
    storage::HddModel& hdd = machine->hdd(k);
    uint64_t hdd_journal = config_.enable_hdd_journal ? config_.hdd_journal_bytes : 0;
    stores_.push_back(std::make_unique<storage::ChunkStore>(
        &hdd, config_.chunk_size, hdd_journal, hdd.capacity() - hdd_journal));
    storage::ChunkStore* backup_store = stores_.back().get();

    journal::JournalManagerOptions jm_options = config_.journal;
    jm_options.name = machine->name() + "/hdd" + std::to_string(k);
    auto jm =
        std::make_unique<journal::JournalManager>(sim_, backup_store, jm_options, &metrics_);

    int primary_ssd = k % nssd;
    if (config_.journal_primary_on_ssd) {
      jm->AddJournal(std::make_unique<journal::JournalWriter>(
                         sim_, &machine->ssd(primary_ssd), ssd_journal_cursor[primary_ssd],
                         region_bytes, machine->name() + "/j-ssd" + std::to_string(primary_ssd)),
                     /*on_hdd=*/false);
      ssd_journal_cursor[primary_ssd] += region_bytes;
    }

    if (config_.journal_primary_on_ssd && config_.enable_expansion_journal && nssd > 1) {
      int expansion_ssd = (k + 1) % nssd;
      jm->AddJournal(
          std::make_unique<journal::JournalWriter>(
              sim_, &machine->ssd(expansion_ssd), ssd_journal_cursor[expansion_ssd],
              region_bytes, machine->name() + "/j-exp" + std::to_string(expansion_ssd)),
          /*on_hdd=*/false);
      ssd_journal_cursor[expansion_ssd] += region_bytes;
    }

    if (config_.enable_hdd_journal) {
      // As an overflow journal it is replayed only when the disk is idle
      // (§3.2); as the PRIMARY journal (ablation) it replays continuously,
      // contending with appends on the same arm — the cost §3.2 avoids.
      jm->AddJournal(std::make_unique<journal::JournalWriter>(
                         sim_, &hdd, 0, hdd_journal,
                         machine->name() + "/j-hdd" + std::to_string(k)),
                     /*on_hdd=*/config_.journal_primary_on_ssd);
    }

    journal_manager_ptrs_.push_back(jm.get());
    journal_managers_.push_back(std::move(jm));
    ChunkServer* server =
        MakeServer(machine, backup_store, journal_manager_ptrs_.back(), /*on_ssd=*/false);
    backup_pool_[m].push_back(server->id());
    RegisterHealthDevice(&hdd, machine->name() + "/hdd" + std::to_string(k), "hdd",
                         server->id());
  }
}

void Cluster::BuildFlatMachine(Machine* machine, bool on_ssd) {
  MachineId m = machine->id();
  int ndisks = on_ssd ? machine->num_ssds() : machine->num_hdds();
  URSA_CHECK_GT(ndisks, 0);
  for (int i = 0; i < ndisks; ++i) {
    storage::BlockDevice* device =
        on_ssd ? static_cast<storage::BlockDevice*>(&machine->ssd(i))
               : static_cast<storage::BlockDevice*>(&machine->hdd(i));
    stores_.push_back(std::make_unique<storage::ChunkStore>(device, config_.chunk_size));
    ChunkServer* server = MakeServer(machine, stores_.back().get(), nullptr, on_ssd);
    primary_pool_[m].push_back(server->id());
    backup_pool_[m].push_back(server->id());
    RegisterHealthDevice(device,
                         machine->name() + (on_ssd ? "/ssd" : "/hdd") + std::to_string(i),
                         on_ssd ? "ssd" : "hdd", server->id());
  }
}

Machine* Cluster::AddClientMachine(int cores) {
  MachineConfig cfg = config_.machine;
  cfg.cores = cores;
  cfg.ssds = 0;
  cfg.hdds = 0;
  client_machines_.push_back(std::make_unique<Machine>(
      sim_, transport_.get(),
      static_cast<MachineId>(1000 + client_machines_.size()), cfg));
  return client_machines_.back().get();
}

void Cluster::CrashServer(ServerId id) {
  URSA_CHECK_LT(id, servers_.size());
  servers_[id]->SetCrashed(true);
}

void Cluster::RestoreServer(ServerId id) {
  URSA_CHECK_LT(id, servers_.size());
  servers_[id]->SetCrashed(false);
}

Nanos Cluster::TotalCpuBusyTime() const {
  Nanos total = 0;
  for (const auto& machine : machines_) {
    total += machine->cpu().busy_time();
  }
  for (const auto& machine : client_machines_) {
    total += machine->cpu().busy_time();
  }
  return total;
}

}  // namespace ursa::cluster
