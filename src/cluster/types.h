// Shared identifiers and protocol types for the Ursa cluster.
#ifndef URSA_CLUSTER_TYPES_H_
#define URSA_CLUSTER_TYPES_H_

#include <cstdint>
#include <vector>

#include "src/common/interval.h"
#include "src/common/units.h"
#include "src/storage/chunk_store.h"

namespace ursa::cluster {

using MachineId = uint32_t;
using ServerId = uint32_t;  // cluster-global chunk-server index
using DiskId = uint64_t;    // virtual disk id
using storage::ChunkId;

// Replica placement mode (§6: SSD-HDD-hybrid vs SSD-only vs HDD-only).
enum class StorageMode { kHybrid, kSsdOnly, kHddOnly };

// Per-request CPU service costs (one core-time slice per event). These are
// the calibrated "software overhead" scalars separating Ursa from the
// baselines in Fig. 7; see core/params.h for the derivations.
struct CpuCosts {
  Nanos client_op = usec(7);     // client-side cost per I/O request
  Nanos server_op = usec(9);     // chunk-server critical-path cost per request
  Nanos replicate_op = usec(4);  // extra cost per backup replication
  // Additional critical-path cost for WRITE execution (journaling /
  // double-write overheads of FileStore-class backends; ~0 for Ursa).
  Nanos server_write_extra = 0;
  // CPU burned per request in parallel worker threads: occupies cores (and
  // thus counts against per-core efficiency, Fig. 7) without extending the
  // request's latency. Near zero for Ursa; large for Ceph-class software.
  Nanos server_background = 0;
};

class ChunkServer;

// One replica of a chunk as seen in the cluster layout.
struct ReplicaRef {
  ServerId server = 0;
  uint32_t node = 0;       // transport NodeId of the hosting machine
  bool on_ssd = false;     // primary-capable
  // Health demotion (DESIGN.md §10): the hosting device is degraded
  // (fail-slow). Clients and the master steer primaries, failover targets,
  // and recovery sources away from demoted replicas when any alternative
  // exists; the replica still holds data and still receives replication
  // writes, so correctness never depends on this flag.
  bool demoted = false;
};

// Placement tier of a chunk (DESIGN.md §13): hot chunks are 3-way
// replicated; cold chunks are demoted to a k+m Reed-Solomon stripe and
// promoted back to replication on write (or on renewed read heat).
enum class ChunkTier : uint8_t { kReplicated = 0, kEc = 1 };

// One shard of an EC'd chunk. Shards are full first-class chunks on their
// hosting servers (allocated, checksummed, scrubbed like replicas); the
// shard chunk id maps back to its parent through the master.
struct EcShardRef {
  ServerId server = 0;
  uint32_t node = 0;       // transport NodeId of the hosting machine
  ChunkId shard_chunk = 0;
};

// Layout of one chunk: replica set plus the view number that versioned it.
struct ChunkLayout {
  ChunkId chunk = 0;
  uint64_t view = 0;
  std::vector<ReplicaRef> replicas;  // replicas[0] is the preferred primary

  // Tiering (DESIGN.md §13). When tier == kEc, `replicas` is empty and
  // ec_shards holds k data shards (byte-contiguous: shard d covers chunk
  // bytes [d*S, (d+1)*S), S = ec_shard_size) followed by m parity shards.
  // ec_version freezes the replica version at demotion; promotion restores
  // it so client version checks stay monotonic across a round trip.
  ChunkTier tier = ChunkTier::kReplicated;
  std::vector<EcShardRef> ec_shards;
  uint16_t ec_k = 0;
  uint16_t ec_m = 0;
  uint64_t ec_shard_size = 0;
  uint64_t ec_version = 0;

  // Speculative write-promotion (DESIGN.md §13): while a cold chunk promotes,
  // the tier stays kEc but spec_replicas already holds the allocated replica
  // targets and client writes land on them directly. spec_extents is the
  // sorted, merged range map of chunk bytes the client has (re)written since
  // the promotion began — reads serve those bytes from spec_replicas and
  // everything else from the shards until back-fill commits the promotion.
  std::vector<ReplicaRef> spec_replicas;
  std::vector<Interval> spec_extents;
  bool speculating() const { return !spec_replicas.empty(); }
};

// Protocol constants (§3.2).
inline constexpr uint64_t kTinyWriteThreshold = 8 * kKiB;    // Tc: client-directed
inline constexpr uint64_t kJournalBypassThreshold = 64 * kKiB;  // Tj

}  // namespace ursa::cluster

#endif  // URSA_CLUSTER_TYPES_H_
