#include "src/cluster/failure_injector.h"

namespace ursa::cluster {

const char* ComponentKindName(ComponentKind kind) {
  switch (kind) {
    case ComponentKind::kHdd:
      return "HDD";
    case ComponentKind::kSsd:
      return "SSD";
    case ComponentKind::kRam:
      return "RAM";
    case ComponentKind::kPower:
      return "Power";
    case ComponentKind::kCpu:
      return "CPU";
    case ComponentKind::kOther:
      return "Other";
  }
  return "?";
}

namespace {
uint64_t PoissonCount(double mean, Rng* rng) {
  // Knuth's algorithm is fine for the small per-device means involved.
  if (mean <= 0) {
    return 0;
  }
  double l = std::exp(-mean);
  uint64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng->NextDouble();
  } while (p > l);
  return k - 1;
}
}  // namespace

FleetFailureCounts SimulateFleetFailures(const FleetModel& model, int machines, double years,
                                         Rng* rng) {
  FleetFailureCounts out;
  struct Component {
    ComponentKind kind;
    double afr;
    int per_machine;
  };
  const Component components[] = {
      {ComponentKind::kHdd, model.hdd_afr, model.hdds_per_machine},
      {ComponentKind::kSsd, model.ssd_afr, model.ssds_per_machine},
      {ComponentKind::kRam, model.ram_afr, model.ram_per_machine},
      {ComponentKind::kPower, model.power_afr, model.power_per_machine},
      {ComponentKind::kCpu, model.cpu_afr, model.cpu_per_machine},
      {ComponentKind::kOther, model.other_afr, model.other_per_machine},
  };
  for (int m = 0; m < machines; ++m) {
    for (const Component& c : components) {
      for (int d = 0; d < c.per_machine; ++d) {
        out.counts[static_cast<int>(c.kind)] += PoissonCount(c.afr * years, rng);
      }
    }
  }
  return out;
}

}  // namespace ursa::cluster
