// Cluster builder: constructs machines, carves SSDs into chunk + journal
// regions, wires chunk servers and journal managers per storage mode, and
// instantiates the master.
//
// Hybrid mode (§3.2): one primary-capable server per SSD (chunk region =
// capacity minus the 1/10 journal quota); one backup server per HDD whose
// JournalManager gets, in preference order, a journal region on a co-located
// SSD, an expansion region on the next SSD, and an HDD journal region
// reserved at the front of its own HDD.
// SSD-only: one server per SSD, in both the primary and backup pools, no
// journals. HDD-only: likewise on HDDs.
#ifndef URSA_CLUSTER_CLUSTER_H_
#define URSA_CLUSTER_CLUSTER_H_

#include <memory>
#include <vector>

#include "src/cluster/chunk_server.h"
#include "src/cluster/machine.h"
#include "src/cluster/master.h"
#include "src/cluster/types.h"
#include "src/obs/health_monitor.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace.h"
#include "src/qos/io_scheduler.h"
#include "src/qos/slo_monitor.h"
#include "src/scrub/checksum_store.h"
#include "src/scrub/recovery_admission.h"
#include "src/scrub/scrub_config.h"
#include "src/scrub/scrub_coordinator.h"
#include "src/scrub/scrubber.h"
#include "src/tier/heat_tracker.h"
#include "src/tier/tier_config.h"
#include "src/tier/tier_migrator.h"

namespace ursa::cluster {

struct ClusterConfig {
  int machines = 3;
  MachineConfig machine;
  StorageMode mode = StorageMode::kHybrid;
  ChunkServerConfig server;
  journal::JournalManagerOptions journal;
  double journal_quota_fraction = 0.1;  // of SSD capacity (§3.2)
  uint64_t hdd_journal_bytes = 4 * kGiB;
  uint64_t chunk_size = storage::kDefaultChunkSize;
  bool enable_hdd_journal = true;
  bool enable_expansion_journal = true;
  // Ablation knob: place the primary journal on the backup HDD itself
  // instead of a co-located SSD (§3.2 argues SSD placement; this measures
  // what it buys).
  bool journal_primary_on_ssd = true;
  // Request tracing: sample every Nth client I/O into a latency-breakdown
  // span (0 = tracing off; 1 = every request). See obs::Tracer.
  uint64_t trace_sample_every = 0;
  // Per-device QoS scheduling (src/qos). When `qos.enabled`, every SSD and
  // HDD gets an IoScheduler gate arbitrating service classes.
  qos::QosConfig qos;
  // Device health scoring (src/obs/health_monitor.h). When `health.enabled`,
  // every device feeds service latencies into a HealthMonitor whose degraded
  // verdicts demote the hosting server's replicas at the master. The monitor
  // self-schedules scoring ticks (keeps the event queue non-empty — pair
  // with RunUntil-style loops, like StatsSampler).
  obs::HealthConfig health;
  // SLO-driven bulk-rate control (src/qos/slo_monitor.h). Requires
  // `qos.enabled` (the controller acts through the per-device schedulers).
  // Self-schedules like the health monitor.
  qos::SloConfig slo;
  // Background scrub (src/scrub, DESIGN.md §11). When `scrub.enabled`, every
  // chunk server keeps a per-sector checksum ledger of accepted writes, and a
  // master-side coordinator sweeps every replica once per `sweep_interval`
  // under ServiceClass::kScrub. Self-schedules like the health monitor.
  scrub::ScrubConfig scrub;
  // Cluster-wide recovery admission: k-per-source-device transfer slots
  // shared by recovery, demotion repair, and scrub re-replication.
  scrub::AdmissionConfig admission;
  // Tiered placement (src/tier, DESIGN.md §13). When `tier.enabled`, chunk
  // servers feed per-chunk heat into a HeatTracker and a TierMigrator
  // periodically demotes cold chunks to k+m EC stripes (promoting them back
  // when heat returns; writes promote synchronously through the master).
  tier::TierConfig tier;
};

class Cluster {
 public:
  Cluster(sim::Simulator* sim, const ClusterConfig& config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  sim::Simulator* simulator() { return sim_; }
  net::Transport& transport() { return *transport_; }
  obs::MetricsRegistry& metrics() { return metrics_; }
  obs::Tracer& tracer() { return tracer_; }
  // Null unless the matching config block is enabled.
  obs::HealthMonitor* health_monitor() { return health_.get(); }
  qos::SloMonitor* slo_monitor() { return slo_.get(); }
  scrub::ScrubCoordinator* scrub_coordinator() { return scrub_coordinator_.get(); }
  scrub::RecoveryAdmission* recovery_admission() { return admission_.get(); }
  tier::HeatTracker* heat_tracker() { return heat_.get(); }
  tier::TierMigrator* tier_migrator() { return tier_migrator_.get(); }
  // Per-server scrub executor (null index range when scrub is disabled).
  scrub::Scrubber* scrubber(ServerId id) {
    return id < scrubbers_.size() ? scrubbers_[id].get() : nullptr;
  }
  // HealthMonitor score of the device behind `server` (0 when unscored or
  // health is disabled).
  double HealthScoreOfServer(ServerId server) const;
  // Scrub-detected media corruptions reported (and repairs completed).
  uint64_t scrub_mismatches_reported() const { return scrub_mismatches_reported_; }
  uint64_t scrub_repairs_completed() const { return scrub_repairs_completed_; }
  // Server hosting the device behind a health DeviceId.
  ServerId ServerOfHealthDevice(obs::HealthMonitor::DeviceId d) const {
    return health_device_server_[d];
  }
  Master& master() { return *master_; }
  Machine& machine(size_t i) { return *machines_[i]; }
  size_t num_machines() const { return machines_.size(); }
  ChunkServer* server(ServerId id) { return servers_[id].get(); }
  size_t num_servers() const { return servers_.size(); }
  const ClusterConfig& config() const { return config_; }

  // A diskless machine for clients (VMM hosts). Returned pointer is owned by
  // the cluster.
  Machine* AddClientMachine(int cores = 16);

  // Crash / restore a server (fault injection used by tests and Fig. 11/12).
  void CrashServer(ServerId id);
  void RestoreServer(ServerId id);

  // Aggregate CPU busy time across all cluster machines (Fig. 7 accounting).
  Nanos TotalCpuBusyTime() const;

  // Journal managers in creation order (backup servers only; empty in
  // SSD-only / HDD-only modes).
  const std::vector<journal::JournalManager*>& journal_managers() const {
    return journal_manager_ptrs_;
  }

 private:
  void BuildHybridMachine(Machine* machine);
  void BuildFlatMachine(Machine* machine, bool on_ssd);

  ChunkServer* MakeServer(Machine* machine, storage::ChunkStore* store,
                          journal::JournalManager* jm, bool on_ssd);

  // Registers `device` with the health monitor (no-op when disabled) and
  // installs the latency observer feeding its digests. `server` is the chunk
  // server whose replicas a degraded verdict demotes.
  void RegisterHealthDevice(storage::BlockDevice* device, std::string name, std::string group,
                            ServerId server);

  sim::Simulator* sim_;
  ClusterConfig config_;
  // Declared before every component so the registry's callback closures
  // (which reference components) are unregistered-by-destruction last.
  obs::MetricsRegistry metrics_;
  obs::Tracer tracer_;
  // Before machines_ (destroyed after them): devices hold observer closures
  // referencing the monitor only while the sim runs, but keeping the monitor
  // alive past the devices makes the ordering trivially safe.
  std::unique_ptr<obs::HealthMonitor> health_;
  std::vector<ServerId> health_device_server_;  // health DeviceId -> server
  std::vector<int64_t> server_health_device_;   // server -> DeviceId (-1 = none)
  std::unique_ptr<net::Transport> transport_;
  std::vector<std::unique_ptr<Machine>> machines_;
  // After machines_: schedulers reference machine-owned devices, so they are
  // destroyed first (reverse declaration order).
  std::vector<std::unique_ptr<qos::IoScheduler>> schedulers_;
  std::vector<std::unique_ptr<Machine>> client_machines_;
  std::vector<std::unique_ptr<storage::ChunkStore>> stores_;
  std::vector<std::unique_ptr<journal::JournalManager>> journal_managers_;
  std::vector<journal::JournalManager*> journal_manager_ptrs_;
  std::vector<std::unique_ptr<ChunkServer>> servers_;
  std::vector<std::vector<ServerId>> primary_pool_;  // per machine
  std::vector<std::vector<ServerId>> backup_pool_;   // per machine
  std::unique_ptr<Master> master_;
  std::unique_ptr<qos::SloMonitor> slo_;  // references schedulers_; last
  // Scrub subsystem (built after master_; destroyed before it). The
  // admission controller outlives the master's raw pointer use because no
  // events run during destruction.
  std::unique_ptr<scrub::RecoveryAdmission> admission_;
  std::vector<std::unique_ptr<scrub::ChecksumStore>> checksum_stores_;  // per server
  std::vector<std::unique_ptr<scrub::Scrubber>> scrubbers_;             // per server
  std::unique_ptr<scrub::ScrubCoordinator> scrub_coordinator_;
  uint64_t scrub_mismatches_reported_ = 0;
  uint64_t scrub_repairs_completed_ = 0;
  // Tiering (built after master_; destroyed before it — the migrator's
  // pending scan events reference the master only while the sim runs).
  std::unique_ptr<tier::HeatTracker> heat_;
  std::unique_ptr<tier::TierMigrator> tier_migrator_;
};

}  // namespace ursa::cluster

#endif  // URSA_CLUSTER_CLUSTER_H_
