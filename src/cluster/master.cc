#include "src/cluster/master.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/common/logging.h"
#include "src/net/message.h"

namespace ursa::cluster {

namespace {
// Preference order within a replica set: healthy SSD, healthy HDD, demoted
// SSD, demoted HDD. Lower rank = preferred (primary selection, recovery
// sources, layout ordering).
int ReplicaRank(const ReplicaRef& r) {
  return (r.demoted ? 2 : 0) + (r.on_ssd ? 0 : 1);
}
}  // namespace

Master::Master(sim::Simulator* sim, net::Transport* transport, Placement placement,
               std::vector<ChunkServer*> servers)
    : sim_(sim),
      transport_(transport),
      placement_(std::move(placement)),
      servers_(std::move(servers)) {}

bool Master::PreferReplica(const ReplicaRef& a, const ReplicaRef& b) const {
  int rank_a = ReplicaRank(a);
  int rank_b = ReplicaRank(b);
  if (rank_a != rank_b) {
    return rank_a < rank_b;
  }
  // Continuous health tiebreak: at equal rank, steer toward the replica whose
  // device scores lower — but only once a side clears the deadband, so the
  // µs-level score jitter between two genuinely healthy devices never churns
  // layouts (each churn costs a view change).
  if (health_score_) {
    double score_a = health_score_(a.server);
    double score_b = health_score_(b.server);
    if (score_a != score_b && std::max(score_a, score_b) >= health_score_deadband_) {
      return score_a < score_b;
    }
  }
  return false;  // equivalent: stable sorts keep the existing order
}

void Master::SortLayout(ChunkLayout* layout) {
  std::stable_sort(
      layout->replicas.begin(), layout->replicas.end(),
      [this](const ReplicaRef& a, const ReplicaRef& b) { return PreferReplica(a, b); });
}

void Master::OnHealthScoresChanged() {
  if (!health_score_) {
    return;
  }
  for (auto& [disk_id, meta] : disks_) {
    for (ChunkLayout& layout : meta.chunks) {
      std::vector<ServerId> before;
      before.reserve(layout.replicas.size());
      for (const ReplicaRef& r : layout.replicas) {
        before.push_back(r.server);
      }
      SortLayout(&layout);
      bool changed = false;
      for (size_t i = 0; i < before.size(); ++i) {
        if (layout.replicas[i].server != before[i]) {
          changed = true;
          break;
        }
      }
      if (!changed) {
        continue;
      }
      // Same client-resteer protocol as demotion: bump the view, install it
      // on alive replicas, and let the stale-view VersionMismatch redirect
      // lease holders to the new preferred order.
      ++layout.view;
      ++recovery_stats_.view_changes;
      for (const ReplicaRef& r : layout.replicas) {
        if (!servers_[r.server]->crashed()) {
          servers_[r.server]->SetView(layout.chunk, layout.view);
        }
      }
    }
  }
}

std::vector<Master::ChunkPlacement> Master::ListChunks() const {
  std::vector<ChunkPlacement> out;
  out.reserve(chunk_refs_.size());
  for (const auto& [disk_id, meta] : disks_) {
    for (const ChunkLayout& layout : meta.chunks) {
      ChunkPlacement p;
      p.chunk = layout.chunk;
      p.size = meta.chunk_size;
      p.servers.reserve(layout.replicas.size());
      for (const ReplicaRef& r : layout.replicas) {
        p.servers.push_back(r.server);
      }
      out.push_back(std::move(p));
    }
  }
  return out;
}

void Master::SetServerDemoted(ServerId server, bool demoted) {
  URSA_CHECK_LT(server, servers_.size());
  if (demoted == IsDemoted(server)) {
    return;
  }
  if (demoted) {
    demoted_.insert(server);
    ++recovery_stats_.demotions;
  } else {
    demoted_.erase(server);
    ++recovery_stats_.undemotions;
  }
  for (auto& [disk_id, meta] : disks_) {
    for (ChunkLayout& layout : meta.chunks) {
      bool touched = false;
      for (ReplicaRef& r : layout.replicas) {
        if (r.server == server && r.demoted != demoted) {
          r.demoted = demoted;
          touched = true;
        }
      }
      if (!touched) {
        continue;
      }
      SortLayout(&layout);
      // Bump the view and install it on the alive replicas: clients holding
      // the old layout get VersionMismatch("stale view") on their next op,
      // refresh, and re-steer. Crashed replicas miss the install and resync
      // through the normal stale-replica repair path when restored.
      ++layout.view;
      ++recovery_stats_.view_changes;
      for (const ReplicaRef& r : layout.replicas) {
        if (!servers_[r.server]->crashed()) {
          servers_[r.server]->SetView(layout.chunk, layout.view);
        }
      }
    }
  }
}

void Master::RegisterMetrics(obs::MetricsRegistry* registry) {
  registry->RegisterCallbackCounter("master.chunks_recovered", {}, [this]() {
    return static_cast<double>(recovery_stats_.chunks_recovered);
  });
  registry->RegisterCallbackCounter("master.recovery_bytes_transferred", {}, [this]() {
    return static_cast<double>(recovery_stats_.bytes_transferred);
  });
  registry->RegisterCallbackCounter("master.incremental_repairs", {}, [this]() {
    return static_cast<double>(recovery_stats_.incremental_repairs);
  });
  registry->RegisterCallbackCounter("master.full_copies", {}, [this]() {
    return static_cast<double>(recovery_stats_.full_copies);
  });
  registry->RegisterCallbackCounter("master.view_changes", {}, [this]() {
    return static_cast<double>(recovery_stats_.view_changes);
  });
  registry->RegisterCallbackCounter("master.corruption_repairs", {}, [this]() {
    return static_cast<double>(recovery_stats_.corruption_repairs);
  });
  registry->RegisterCallbackCounter("master.demotions", {}, [this]() {
    return static_cast<double>(recovery_stats_.demotions);
  });
  registry->RegisterCallbackGauge(
      "master.demoted_servers", {}, [this]() { return static_cast<double>(demoted_.size()); });
  registry->RegisterCallbackGauge(
      "master.disks", {}, [this]() { return static_cast<double>(disks_.size()); });
  registry->RegisterCallbackGauge(
      "master.chunks", {}, [this]() { return static_cast<double>(chunk_refs_.size()); });
}

Result<DiskId> Master::CreateDisk(const std::string& name, uint64_t size, int replication,
                                  int stripe_group) {
  if (size == 0 || replication < 1 || stripe_group < 1) {
    return InvalidArgument("bad disk parameters");
  }
  DiskMeta meta;
  meta.id = next_disk_id_++;
  meta.name = name;
  meta.size = size;
  meta.replication = replication;
  meta.stripe_group = stripe_group;
  meta.chunk_size = chunk_size_;

  uint64_t num_chunks = (size + meta.chunk_size - 1) / meta.chunk_size;
  // Striping (§3.4) addresses whole groups; round the chunk count up so the
  // last group is complete (the extra capacity is simply allocated).
  uint64_t group = static_cast<uint64_t>(stripe_group);
  num_chunks = (num_chunks + group - 1) / group * group;
  meta.chunks.reserve(num_chunks);
  for (uint64_t seq = 0; seq < num_chunks; ++seq) {
    Result<std::vector<ServerId>> servers =
        placement_.PlaceChunk(seq, replication, meta.id * 7919);
    if (!servers.ok()) {
      return servers.status();
    }
    ChunkLayout layout;
    layout.chunk = next_chunk_id_++;
    layout.view = 1;
    for (ServerId sid : *servers) {
      ChunkServer* server = servers_[sid];
      // The disk id doubles as the QoS tenant for every replica's I/O.
      Status s = server->AllocateChunk(layout.chunk, layout.view, meta.id);
      if (!s.ok()) {
        return s;
      }
      layout.replicas.push_back(ReplicaRef{sid, server->node(), server->on_ssd()});
    }
    chunk_refs_[layout.chunk] = ChunkRef{meta.id, seq};
    meta.chunks.push_back(std::move(layout));
  }
  DiskId id = meta.id;
  disks_[id] = std::move(meta);
  return id;
}

Result<const DiskMeta*> Master::OpenDisk(DiskId disk, ClientId client) {
  auto it = disks_.find(disk);
  if (it == disks_.end()) {
    return NotFound("no such disk");
  }
  DiskMeta& meta = it->second;
  Nanos now = sim_->Now();
  if (meta.lease_holder != 0 && meta.lease_holder != client && meta.lease_expiry > now) {
    return Unavailable("disk leased by another client");
  }
  meta.lease_holder = client;
  meta.lease_expiry = now + lease_term_;
  return &meta;
}

Status Master::RenewLease(DiskId disk, ClientId client) {
  auto it = disks_.find(disk);
  if (it == disks_.end()) {
    return NotFound("no such disk");
  }
  DiskMeta& meta = it->second;
  if (meta.lease_holder != client) {
    return Unavailable("lease held by another client");
  }
  meta.lease_expiry = sim_->Now() + lease_term_;
  return OkStatus();
}

Status Master::CloseDisk(DiskId disk, ClientId client) {
  auto it = disks_.find(disk);
  if (it == disks_.end()) {
    return NotFound("no such disk");
  }
  if (it->second.lease_holder == client) {
    it->second.lease_holder = 0;
    it->second.lease_expiry = 0;
  }
  return OkStatus();
}

Result<const DiskMeta*> Master::GetDisk(DiskId disk) const {
  auto it = disks_.find(disk);
  if (it == disks_.end()) {
    return NotFound("no such disk");
  }
  return &it->second;
}

Master::Checkpoint Master::TakeCheckpoint() const {
  Checkpoint cp;
  cp.disks = disks_;
  cp.next_disk_id = next_disk_id_;
  cp.next_chunk_id = next_chunk_id_;
  return cp;
}

void Master::Restore(const Checkpoint& checkpoint) {
  disks_ = checkpoint.disks;
  next_disk_id_ = checkpoint.next_disk_id;
  next_chunk_id_ = checkpoint.next_chunk_id;
  // Rebuild the chunk index; leases are deliberately NOT restored — clients
  // re-acquire them after a master restart (their timing constraints make
  // interleaving impossible, §4.1).
  chunk_refs_.clear();
  for (auto& [disk_id, meta] : disks_) {
    meta.lease_holder = 0;
    meta.lease_expiry = 0;
    for (size_t i = 0; i < meta.chunks.size(); ++i) {
      chunk_refs_[meta.chunks[i].chunk] = ChunkRef{disk_id, i};
    }
  }
}

ChunkLayout* Master::FindLayout(ChunkId chunk) {
  auto ref = chunk_refs_.find(chunk);
  if (ref == chunk_refs_.end()) {
    return nullptr;
  }
  return &disks_[ref->second.disk].chunks[ref->second.index];
}

void Master::TransferChunk(ChunkId chunk, ChunkServer* source, ChunkServer* target,
                           uint64_t chunk_size, std::function<void(Status, uint64_t)> done,
                           qos::ServiceClass cls) {
  if (admission_ != nullptr) {
    // Cluster-wide per-source pacing: the piece pump starts only once this
    // source device has a free transfer slot, and holds it until `done`.
    auto priority = cls == qos::ServiceClass::kScrub
                        ? scrub::RecoveryAdmission::Priority::kScrub
                        : scrub::RecoveryAdmission::Priority::kRecovery;
    uint64_t source_id = source->id();
    auto released = [this, source_id, done = std::move(done)](Status s, uint64_t version) {
      admission_->Release(source_id);
      done(s, version);
    };
    admission_->Acquire(source_id, priority,
                        [this, chunk, source, target, chunk_size, cls,
                         released = std::move(released)]() mutable {
                          TransferChunkNow(chunk, source, target, chunk_size,
                                           std::move(released), cls);
                        });
    return;
  }
  TransferChunkNow(chunk, source, target, chunk_size, std::move(done), cls);
}

void Master::TransferRanges(ChunkId chunk, ChunkServer* source, ChunkServer* target,
                            std::vector<Interval> ranges, std::function<void(Status)> done,
                            qos::ServiceClass cls) {
  if (admission_ != nullptr && !ranges.empty()) {
    auto priority = cls == qos::ServiceClass::kScrub
                        ? scrub::RecoveryAdmission::Priority::kScrub
                        : scrub::RecoveryAdmission::Priority::kRecovery;
    uint64_t source_id = source->id();
    auto released = [this, source_id, done = std::move(done)](Status s) {
      admission_->Release(source_id);
      done(s);
    };
    admission_->Acquire(source_id, priority,
                        [this, chunk, source, target, cls, ranges = std::move(ranges),
                         released = std::move(released)]() mutable {
                          TransferRangesNow(chunk, source, target, std::move(ranges),
                                            std::move(released), cls);
                        });
    return;
  }
  TransferRangesNow(chunk, source, target, std::move(ranges), std::move(done), cls);
}

void Master::TransferChunkNow(ChunkId chunk, ChunkServer* source, ChunkServer* target,
                              uint64_t chunk_size, std::function<void(Status, uint64_t)> done,
                              qos::ServiceClass cls) {
  // Sliding window of `recovery_window_` pieces, each `recovery_piece_`
  // bytes: read at the source (journal-aware), ship over the network, write
  // at the target. Saturates the target's inbound NIC when sources are fast
  // enough — the Fig. 12 bound.
  struct State {
    uint64_t next_offset = 0;
    uint64_t completed = 0;
    uint64_t total_pieces = 0;
    uint64_t source_version = 0;
    bool failed = false;
    bool waiting = false;
    std::function<void(Status, uint64_t)> done;
  };
  auto st = std::make_shared<State>();
  st->total_pieces = (chunk_size + recovery_piece_ - 1) / recovery_piece_;
  st->done = std::move(done);

  auto pump = std::make_shared<std::function<void()>>();
  *pump = [this, chunk, source, target, chunk_size, cls, st, pump]() {
    if (st->failed || st->waiting) {
      return;
    }
    // QoS backpressure: when the target device's scheduler reports the
    // recovery class past its queue-depth high watermark, pause issuing
    // pieces until it drains to the low watermark (in-flight pieces finish).
    storage::IoGate* gate = target->store()->device()->gate();
    if (gate != nullptr && gate->ShouldThrottle(cls)) {
      st->waiting = true;
      gate->WhenReady(cls, [st, pump]() {
        st->waiting = false;
        (*pump)();
      });
      return;
    }
    while (st->next_offset < chunk_size &&
           (st->next_offset / recovery_piece_) - st->completed <
               static_cast<uint64_t>(recovery_window_)) {
      uint64_t offset = st->next_offset;
      uint64_t len = std::min(recovery_piece_, chunk_size - offset);
      st->next_offset += len;
      std::shared_ptr<std::vector<uint8_t>> buf;
      if (recovery_carries_data_) {
        buf = std::make_shared<std::vector<uint8_t>>(len);
      }
      void* buf_ptr = buf ? buf->data() : nullptr;
      source->HandleRecoveryRead(
          chunk, offset, len, buf_ptr,
          [this, chunk, source, target, offset, len, cls, st, pump, buf](const Status& s,
                                                                         uint64_t version) {
            if (st->failed) {
              return;
            }
            if (!s.ok()) {
              st->failed = true;
              st->done(s, 0);
              return;
            }
            st->source_version = std::max(st->source_version, version);
            uint64_t wire = net::WireBytes(net::MessageType::kRecoveryData, len);
            transport_->Send(source->node(), target->node(), wire,
                             [this, chunk, target, offset, len, cls, st, pump, buf]() {
                               target->HandleRecoveryWrite(
                                   chunk, offset, len, buf ? buf->data() : nullptr,
                                   [this, len, st, pump, buf](const Status& s2) {
                                     if (st->failed) {
                                       return;
                                     }
                                     if (!s2.ok()) {
                                       st->failed = true;
                                       st->done(s2, 0);
                                       return;
                                     }
                                     ++st->completed;
                                     recovery_stats_.bytes_transferred += len;
                                     if (st->completed == st->total_pieces) {
                                       st->done(OkStatus(), st->source_version);
                                     } else {
                                       (*pump)();
                                     }
                                   },
                                   cls);
                             });
          },
          cls);
    }
  };
  (*pump)();
}

void Master::TransferRangesNow(ChunkId chunk, ChunkServer* source, ChunkServer* target,
                               std::vector<Interval> ranges, std::function<void(Status)> done,
                               qos::ServiceClass cls) {
  if (ranges.empty()) {
    sim_->After(0, [done = std::move(done)]() { done(OkStatus()); });
    return;
  }
  auto remaining = std::make_shared<size_t>(ranges.size());
  auto failed = std::make_shared<bool>(false);
  auto done_shared = std::make_shared<std::function<void(Status)>>(std::move(done));
  for (const Interval& range : ranges) {
    std::shared_ptr<std::vector<uint8_t>> buf;
    if (recovery_carries_data_) {
      buf = std::make_shared<std::vector<uint8_t>>(range.length);
    }
    void* buf_ptr = buf ? buf->data() : nullptr;
    source->HandleRecoveryRead(
        chunk, range.offset, range.length, buf_ptr,
        [this, chunk, source, target, range, cls, remaining, failed, done_shared,
         buf](const Status& s, uint64_t) {
          if (*failed) {
            return;
          }
          if (!s.ok()) {
            *failed = true;
            (*done_shared)(s);
            return;
          }
          uint64_t wire = net::WireBytes(net::MessageType::kRecoveryData, range.length);
          transport_->Send(
              source->node(), target->node(), wire,
              [this, chunk, target, range, cls, remaining, failed, done_shared, buf]() {
                target->HandleRecoveryWrite(
                    chunk, range.offset, range.length, buf ? buf->data() : nullptr,
                    [this, range, remaining, failed, done_shared, buf](const Status& s2) {
                      if (*failed) {
                        return;
                      }
                      if (!s2.ok()) {
                        *failed = true;
                        (*done_shared)(s2);
                        return;
                      }
                      recovery_stats_.bytes_transferred += range.length;
                      if (--*remaining == 0) {
                        (*done_shared)(OkStatus());
                      }
                    },
                    cls);
              });
        },
        cls);
  }
}

void Master::ReportReplicaFailure(ChunkId chunk, ServerId failed,
                                  std::function<void(Status)> done) {
  ChunkLayout* layout = FindLayout(chunk);
  if (layout == nullptr) {
    done(NotFound("unknown chunk"));
    return;
  }
  auto ref = chunk_refs_.find(chunk);
  const DiskMeta& disk = disks_[ref->second.disk];

  // Verify the suspicion before acting (§4.2.2: Ursa deliberately avoids
  // declaring replicas dead on a timeout alone). A client timeout can stem
  // from transient slowness or from a DIFFERENT stale replica failing the
  // quorum; replacing a healthy replica would discard its (possibly
  // freshest) data. If the suspect responds, repair lagging replicas
  // instead of changing the view.
  if (failed < servers_.size() && !servers_[failed]->crashed()) {
    auto remaining = std::make_shared<size_t>(layout->replicas.size());
    auto done_shared = std::make_shared<std::function<void(Status)>>(std::move(done));
    for (const ReplicaRef& r : layout->replicas) {
      RepairReplica(chunk, r.server, [remaining, done_shared](Status) {
        if (--*remaining == 0) {
          (*done_shared)(OkStatus());
        }
      });
    }
    return;
  }

  // Collect survivors and their versions (the master "tries to collect
  // version numbers from a majority of replicas", §4.2.2).
  std::vector<ReplicaRef> survivors;
  bool failed_was_primary_capable = false;
  for (const ReplicaRef& r : layout->replicas) {
    if (r.server == failed) {
      failed_was_primary_capable = r.on_ssd;
      continue;
    }
    if (!servers_[r.server]->crashed()) {
      survivors.push_back(r);
    }
  }
  if (survivors.empty()) {
    done(Unavailable("no surviving replica: data loss"));
    return;
  }

  uint64_t version_h = 0;
  ChunkServer* source = nullptr;
  const ReplicaRef* source_ref = nullptr;
  for (const ReplicaRef& r : survivors) {
    Result<ChunkServer::ReplicaState> st = servers_[r.server]->GetState(chunk);
    if (!st.ok()) {
      continue;
    }
    // Version first (a stale source would hide committed writes); at equal
    // versions prefer healthy over demoted, SSD over HDD, and lower health
    // score (a gray-slow source would drag the whole transfer).
    if (source == nullptr || st->version > version_h ||
        (st->version == version_h && PreferReplica(r, *source_ref))) {
      version_h = st->version;
      source = servers_[r.server];
      source_ref = &r;
    }
  }
  if (source == nullptr) {
    done(Unavailable("no readable survivor"));
    return;
  }

  // Allocate the replacement on a machine hosting no survivor.
  std::vector<MachineId> exclude;
  for (const ReplicaRef& r : survivors) {
    exclude.push_back(placement_.MachineOf(r.server));
  }
  ChunkServer* target = nullptr;
  // Two sweeps: prefer a healthy replacement, but accept a demoted one over
  // leaving the chunk under-replicated.
  for (int allow_demoted = 0; allow_demoted < 2 && target == nullptr; ++allow_demoted) {
    for (uint64_t salt = chunk; salt < chunk + num_servers(); ++salt) {
      Result<ServerId> candidate =
          placement_.PlaceReplacement(failed_was_primary_capable, exclude, salt);
      if (!candidate.ok()) {
        continue;
      }
      ChunkServer* server = servers_[*candidate];
      // Never reuse the failed server or any server already hosting the chunk
      // (possible on small clusters where every machine holds a survivor).
      if (*candidate != failed && !server->crashed() && !server->HasChunk(chunk) &&
          (allow_demoted == 1 || !IsDemoted(*candidate))) {
        target = server;
        break;
      }
    }
  }
  if (target == nullptr) {
    done(ResourceExhausted("no replacement server available"));
    return;
  }
  uint64_t new_view = layout->view + 1;
  Status alloc = target->AllocateChunk(chunk, new_view, ref->second.disk);
  if (!alloc.ok()) {
    done(alloc);
    return;
  }

  uint64_t chunk_size = disk.chunk_size;
  ChunkServer* source_ptr = source;
  TransferChunk(
      chunk, source, target, chunk_size,
      [this, chunk, layout, failed, source_ptr, target, new_view, version_h, chunk_size,
       done = std::move(done)](const Status& s, uint64_t) {
        if (!s.ok()) {
          done(s);
          return;
        }
        // Before installing the new view, bring every LAGGING survivor up to
        // versionH with real data (incremental repair from the source's
        // journal lite, or a full copy when history is gone) — a bare
        // version fast-forward would hide lost writes.
        auto laggards = std::make_shared<std::vector<ChunkServer*>>();
        for (const ReplicaRef& r : layout->replicas) {
          if (r.server == failed || servers_[r.server]->crashed()) {
            continue;
          }
          Result<ChunkServer::ReplicaState> st = servers_[r.server]->GetState(chunk);
          if (st.ok() && st->version < version_h) {
            laggards->push_back(servers_[r.server]);
          }
        }
        auto finish = [this, chunk, layout, failed, target, new_view, version_h,
                       done = std::move(done)]() {
          // Install the new view. Writes kept committing during the
          // transfer, so survivors may have advanced past versionH — never
          // move a replica's version backward, only adopt the new view.
          target->SetState(chunk, version_h, new_view);
          for (ReplicaRef& r : layout->replicas) {
            if (r.server == failed) {
              r = ReplicaRef{target->id(), target->node(), target->on_ssd(),
                             IsDemoted(target->id())};
            } else {
              Result<ChunkServer::ReplicaState> st = servers_[r.server]->GetState(chunk);
              if (st.ok()) {
                servers_[r.server]->SetState(chunk, std::max(st->version, version_h),
                                             new_view);
              }
            }
          }
          layout->view = new_view;
          // Keep the preferred primary first (a healthy SSD replica if any,
          // health-score tiebroken).
          SortLayout(layout);
          ++recovery_stats_.chunks_recovered;
          ++recovery_stats_.view_changes;
          done(OkStatus());
        };
        if (laggards->empty()) {
          finish();
          return;
        }
        auto remaining = std::make_shared<size_t>(laggards->size());
        auto finish_shared = std::make_shared<std::function<void()>>(std::move(finish));
        for (ChunkServer* laggard : *laggards) {
          Result<ChunkServer::ReplicaState> st = laggard->GetState(chunk);
          uint64_t from_version = st.ok() ? st->version : 0;
          std::vector<Interval> ranges;
          auto on_done = [remaining, finish_shared](Status) {
            if (--*remaining == 0) {
              (*finish_shared)();
            }
          };
          if (source_ptr->ModifiedSince(chunk, from_version, &ranges)) {
            ++recovery_stats_.incremental_repairs;
            TransferRanges(chunk, source_ptr, laggard, std::move(ranges), on_done);
          } else {
            ++recovery_stats_.full_copies;
            TransferChunk(chunk, source_ptr, laggard, chunk_size,
                          [on_done](Status s2, uint64_t) { on_done(s2); });
          }
        }
      });
}

void Master::RepairChunkReplicas(ChunkId chunk) {
  ChunkLayout* layout = FindLayout(chunk);
  if (layout == nullptr) {
    return;
  }
  for (const ReplicaRef& r : layout->replicas) {
    if (!servers_[r.server]->crashed()) {
      RepairReplica(chunk, r.server, [](Status) {});
    }
  }
}

void Master::RepairCorruptRange(ChunkId chunk, ServerId corrupt_server, uint64_t offset,
                                uint64_t length, std::function<void(Status)> done) {
  ChunkLayout* layout = FindLayout(chunk);
  if (layout == nullptr) {
    sim_->After(0, [done = std::move(done)]() { done(NotFound("unknown chunk")); });
    return;
  }
  // Freshest alive replica OTHER than the damaged one. Version order does not
  // gate this repair: the corrupt replica may well hold the highest version —
  // the flipped bits destroyed its data, not its metadata.
  ChunkServer* source = nullptr;
  uint64_t best_version = 0;
  const ReplicaRef* best_ref = nullptr;
  for (const ReplicaRef& r : layout->replicas) {
    if (r.server == corrupt_server || servers_[r.server]->crashed()) {
      continue;
    }
    Result<ChunkServer::ReplicaState> st = servers_[r.server]->GetState(chunk);
    if (!st.ok()) {
      continue;
    }
    if (source == nullptr || st->version > best_version ||
        (st->version == best_version && PreferReplica(r, *best_ref))) {
      best_version = st->version;
      source = servers_[r.server];
      best_ref = &r;
    }
  }
  if (source == nullptr) {
    // No healthy replica to heal from: leave the range quarantined (reads
    // keep failing with kCorruption rather than serving stale bytes).
    sim_->After(0, [done = std::move(done)]() {
      done(Unavailable("no healthy replica for corruption repair"));
    });
    return;
  }
  ++recovery_stats_.corruption_repairs;
  ChunkServer* target = servers_[corrupt_server];
  // Scrub repair: lowest-priority class — it races nothing (reads of the
  // range stay quarantined until `done`).
  TransferRanges(chunk, source, target, {Interval{offset, length}}, std::move(done),
                 qos::ServiceClass::kScrub);
}

void Master::RepairReplica(ChunkId chunk, ServerId lagging, std::function<void(Status)> done) {
  ChunkLayout* layout = FindLayout(chunk);
  if (layout == nullptr) {
    done(NotFound("unknown chunk"));
    return;
  }
  ChunkServer* laggard = servers_[lagging];
  Result<ChunkServer::ReplicaState> lag_state = laggard->GetState(chunk);
  if (!lag_state.ok()) {
    done(lag_state.status());
    return;
  }

  // Find the freshest peer (healthy over demoted, SSD over HDD at ties).
  uint64_t version_h = lag_state->version;
  ChunkServer* source = nullptr;
  const ReplicaRef* source_ref = nullptr;
  for (const ReplicaRef& r : layout->replicas) {
    if (r.server == lagging || servers_[r.server]->crashed()) {
      continue;
    }
    Result<ChunkServer::ReplicaState> st = servers_[r.server]->GetState(chunk);
    if (!st.ok() || st->version <= lag_state->version) {
      continue;
    }
    if (source == nullptr || st->version > version_h ||
        (st->version == version_h && PreferReplica(r, *source_ref))) {
      version_h = st->version;
      source = servers_[r.server];
      source_ref = &r;
    }
  }
  if (source == nullptr) {
    done(OkStatus());  // already up to date
    return;
  }

  auto ref = chunk_refs_.find(chunk);
  uint64_t chunk_size = disks_[ref->second.disk].chunk_size;
  uint64_t target_version = version_h;
  uint64_t view = layout->view;

  // The laggard may receive replications while the repair transfer runs;
  // never move its version backward when installing the repaired state.
  auto install = [laggard, chunk, target_version, view](const Status& s) {
    if (s.ok()) {
      Result<ChunkServer::ReplicaState> now = laggard->GetState(chunk);
      uint64_t v = now.ok() ? std::max(now->version, target_version) : target_version;
      laggard->SetState(chunk, v, view);
    }
  };
  std::vector<Interval> ranges;
  if (source->ModifiedSince(chunk, lag_state->version, &ranges)) {
    ++recovery_stats_.incremental_repairs;
    TransferRanges(chunk, source, laggard, std::move(ranges),
                   [install, done = std::move(done)](Status s) {
                     install(s);
                     done(s);
                   });
  } else {
    // History GC'd: transfer the whole chunk (§4.2.1).
    ++recovery_stats_.full_copies;
    TransferChunk(chunk, source, laggard, chunk_size,
                  [install, done = std::move(done)](Status s, uint64_t) {
                    install(s);
                    done(s);
                  });
  }
}

}  // namespace ursa::cluster
