#include "src/cluster/master.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/common/logging.h"
#include "src/net/message.h"
#include "src/tier/heat_tracker.h"

namespace ursa::cluster {

namespace {
// Preference order within a replica set: healthy SSD, healthy HDD, demoted
// SSD, demoted HDD. Lower rank = preferred (primary selection, recovery
// sources, layout ordering).
int ReplicaRank(const ReplicaRef& r) {
  return (r.demoted ? 2 : 0) + (r.on_ssd ? 0 : 1);
}
}  // namespace

Master::Master(sim::Simulator* sim, net::Transport* transport, Placement placement,
               std::vector<ChunkServer*> servers)
    : sim_(sim),
      transport_(transport),
      placement_(std::move(placement)),
      servers_(std::move(servers)) {}

bool Master::PreferReplica(const ReplicaRef& a, const ReplicaRef& b) const {
  int rank_a = ReplicaRank(a);
  int rank_b = ReplicaRank(b);
  if (rank_a != rank_b) {
    return rank_a < rank_b;
  }
  // Continuous health tiebreak: at equal rank, steer toward the replica whose
  // device scores lower — but only once a side clears the deadband, so the
  // µs-level score jitter between two genuinely healthy devices never churns
  // layouts (each churn costs a view change).
  if (health_score_) {
    double score_a = health_score_(a.server);
    double score_b = health_score_(b.server);
    if (score_a != score_b && std::max(score_a, score_b) >= health_score_deadband_) {
      return score_a < score_b;
    }
  }
  return false;  // equivalent: stable sorts keep the existing order
}

void Master::SortLayout(ChunkLayout* layout) {
  std::stable_sort(
      layout->replicas.begin(), layout->replicas.end(),
      [this](const ReplicaRef& a, const ReplicaRef& b) { return PreferReplica(a, b); });
}

void Master::OnHealthScoresChanged() {
  if (!health_score_) {
    return;
  }
  for (auto& [disk_id, meta] : disks_) {
    for (ChunkLayout& layout : meta.chunks) {
      std::vector<ServerId> before;
      before.reserve(layout.replicas.size());
      for (const ReplicaRef& r : layout.replicas) {
        before.push_back(r.server);
      }
      SortLayout(&layout);
      bool changed = false;
      for (size_t i = 0; i < before.size(); ++i) {
        if (layout.replicas[i].server != before[i]) {
          changed = true;
          break;
        }
      }
      if (!changed) {
        continue;
      }
      // Same client-resteer protocol as demotion: bump the view, install it
      // on alive replicas, and let the stale-view VersionMismatch redirect
      // lease holders to the new preferred order.
      ++layout.view;
      ++recovery_stats_.view_changes;
      for (const ReplicaRef& r : layout.replicas) {
        if (!servers_[r.server]->crashed()) {
          servers_[r.server]->SetView(layout.chunk, layout.view);
        }
      }
    }
  }
}

std::vector<Master::ChunkPlacement> Master::ListChunks() const {
  std::vector<ChunkPlacement> out;
  out.reserve(chunk_refs_.size());
  for (const auto& [disk_id, meta] : disks_) {
    for (const ChunkLayout& layout : meta.chunks) {
      if (layout.tier == ChunkTier::kEc) {
        // EC'd chunks expose their shards to the scrubber: each shard is a
        // single-replica chunk whose checksum ledger covers the shard extent.
        for (const EcShardRef& sh : layout.ec_shards) {
          ChunkPlacement p;
          p.chunk = sh.shard_chunk;
          p.size = layout.ec_shard_size;
          p.servers.push_back(sh.server);
          out.push_back(std::move(p));
        }
        continue;
      }
      ChunkPlacement p;
      p.chunk = layout.chunk;
      p.size = meta.chunk_size;
      p.servers.reserve(layout.replicas.size());
      for (const ReplicaRef& r : layout.replicas) {
        p.servers.push_back(r.server);
      }
      out.push_back(std::move(p));
    }
  }
  return out;
}

void Master::SetServerDemoted(ServerId server, bool demoted) {
  URSA_CHECK_LT(server, servers_.size());
  if (demoted == IsDemoted(server)) {
    return;
  }
  if (demoted) {
    demoted_.insert(server);
    ++recovery_stats_.demotions;
  } else {
    demoted_.erase(server);
    ++recovery_stats_.undemotions;
  }
  for (auto& [disk_id, meta] : disks_) {
    for (ChunkLayout& layout : meta.chunks) {
      bool touched = false;
      for (ReplicaRef& r : layout.replicas) {
        if (r.server == server && r.demoted != demoted) {
          r.demoted = demoted;
          touched = true;
        }
      }
      if (!touched) {
        continue;
      }
      SortLayout(&layout);
      // Bump the view and install it on the alive replicas: clients holding
      // the old layout get VersionMismatch("stale view") on their next op,
      // refresh, and re-steer. Crashed replicas miss the install and resync
      // through the normal stale-replica repair path when restored.
      ++layout.view;
      ++recovery_stats_.view_changes;
      for (const ReplicaRef& r : layout.replicas) {
        if (!servers_[r.server]->crashed()) {
          servers_[r.server]->SetView(layout.chunk, layout.view);
        }
      }
    }
  }
}

void Master::RegisterMetrics(obs::MetricsRegistry* registry) {
  registry->RegisterCallbackCounter("master.chunks_recovered", {}, [this]() {
    return static_cast<double>(recovery_stats_.chunks_recovered);
  });
  registry->RegisterCallbackCounter("master.recovery_bytes_transferred", {}, [this]() {
    return static_cast<double>(recovery_stats_.bytes_transferred);
  });
  registry->RegisterCallbackCounter("master.incremental_repairs", {}, [this]() {
    return static_cast<double>(recovery_stats_.incremental_repairs);
  });
  registry->RegisterCallbackCounter("master.full_copies", {}, [this]() {
    return static_cast<double>(recovery_stats_.full_copies);
  });
  registry->RegisterCallbackCounter("master.view_changes", {}, [this]() {
    return static_cast<double>(recovery_stats_.view_changes);
  });
  registry->RegisterCallbackCounter("master.corruption_repairs", {}, [this]() {
    return static_cast<double>(recovery_stats_.corruption_repairs);
  });
  registry->RegisterCallbackCounter("master.demotions", {}, [this]() {
    return static_cast<double>(recovery_stats_.demotions);
  });
  registry->RegisterCallbackGauge(
      "master.demoted_servers", {}, [this]() { return static_cast<double>(demoted_.size()); });
  registry->RegisterCallbackGauge(
      "master.disks", {}, [this]() { return static_cast<double>(disks_.size()); });
  registry->RegisterCallbackGauge(
      "master.chunks", {}, [this]() { return static_cast<double>(chunk_refs_.size()); });
  registry->RegisterCallbackCounter("tier.master_demotions", {}, [this]() {
    return static_cast<double>(tier_stats_.demotions);
  });
  registry->RegisterCallbackCounter("tier.master_demote_aborts", {}, [this]() {
    return static_cast<double>(tier_stats_.demote_aborts);
  });
  registry->RegisterCallbackCounter("tier.master_promotions", {}, [this]() {
    return static_cast<double>(tier_stats_.promotions);
  });
  registry->RegisterCallbackCounter("tier.write_promotions", {}, [this]() {
    return static_cast<double>(tier_stats_.write_promotions);
  });
  registry->RegisterCallbackCounter("tier.shard_repairs", {}, [this]() {
    return static_cast<double>(tier_stats_.shard_repairs);
  });
  registry->RegisterCallbackCounter("tier.shard_range_repairs", {}, [this]() {
    return static_cast<double>(tier_stats_.shard_range_repairs);
  });
  registry->RegisterCallbackCounter("tier.ec_bytes_encoded", {}, [this]() {
    return static_cast<double>(tier_stats_.ec_bytes_encoded);
  });
  registry->RegisterCallbackGauge("tier.ec_chunks", {}, [this]() {
    size_t n = 0;
    for (const auto& [id, meta] : disks_) {
      for (const ChunkLayout& l : meta.chunks) {
        n += l.tier == ChunkTier::kEc ? 1 : 0;
      }
    }
    return static_cast<double>(n);
  });
  registry->RegisterCallbackGauge(
      "tier.physical_bytes", {}, [this]() { return static_cast<double>(PhysicalBytes()); });
  registry->RegisterCallbackGauge(
      "tier.logical_bytes", {}, [this]() { return static_cast<double>(LogicalBytes()); });
}

Result<DiskId> Master::CreateDisk(const std::string& name, uint64_t size, int replication,
                                  int stripe_group) {
  if (size == 0 || replication < 1 || stripe_group < 1) {
    return InvalidArgument("bad disk parameters");
  }
  DiskMeta meta;
  meta.id = next_disk_id_++;
  meta.name = name;
  meta.size = size;
  meta.replication = replication;
  meta.stripe_group = stripe_group;
  meta.chunk_size = chunk_size_;

  uint64_t num_chunks = (size + meta.chunk_size - 1) / meta.chunk_size;
  // Striping (§3.4) addresses whole groups; round the chunk count up so the
  // last group is complete (the extra capacity is simply allocated).
  uint64_t group = static_cast<uint64_t>(stripe_group);
  num_chunks = (num_chunks + group - 1) / group * group;
  meta.chunks.reserve(num_chunks);
  for (uint64_t seq = 0; seq < num_chunks; ++seq) {
    Result<std::vector<ServerId>> servers =
        placement_.PlaceChunk(seq, replication, meta.id * 7919);
    if (!servers.ok()) {
      return servers.status();
    }
    ChunkLayout layout;
    layout.chunk = next_chunk_id_++;
    layout.view = 1;
    for (ServerId sid : *servers) {
      ChunkServer* server = servers_[sid];
      // The disk id doubles as the QoS tenant for every replica's I/O.
      Status s = server->AllocateChunk(layout.chunk, layout.view, meta.id);
      if (!s.ok()) {
        return s;
      }
      layout.replicas.push_back(ReplicaRef{sid, server->node(), server->on_ssd()});
    }
    chunk_refs_[layout.chunk] = ChunkRef{meta.id, seq};
    NotifyTierChanged(layout.chunk, false);
    meta.chunks.push_back(std::move(layout));
  }
  DiskId id = meta.id;
  disks_[id] = std::move(meta);
  return id;
}

Result<const DiskMeta*> Master::OpenDisk(DiskId disk, ClientId client) {
  auto it = disks_.find(disk);
  if (it == disks_.end()) {
    return NotFound("no such disk");
  }
  DiskMeta& meta = it->second;
  Nanos now = sim_->Now();
  if (meta.lease_holder != 0 && meta.lease_holder != client && meta.lease_expiry > now) {
    return Unavailable("disk leased by another client");
  }
  meta.lease_holder = client;
  meta.lease_expiry = now + lease_term_;
  return &meta;
}

Status Master::RenewLease(DiskId disk, ClientId client) {
  auto it = disks_.find(disk);
  if (it == disks_.end()) {
    return NotFound("no such disk");
  }
  DiskMeta& meta = it->second;
  if (meta.lease_holder != client) {
    return Unavailable("lease held by another client");
  }
  meta.lease_expiry = sim_->Now() + lease_term_;
  return OkStatus();
}

Status Master::CloseDisk(DiskId disk, ClientId client) {
  auto it = disks_.find(disk);
  if (it == disks_.end()) {
    return NotFound("no such disk");
  }
  if (it->second.lease_holder == client) {
    it->second.lease_holder = 0;
    it->second.lease_expiry = 0;
  }
  return OkStatus();
}

Result<const DiskMeta*> Master::GetDisk(DiskId disk) const {
  auto it = disks_.find(disk);
  if (it == disks_.end()) {
    return NotFound("no such disk");
  }
  return &it->second;
}

Master::Checkpoint Master::TakeCheckpoint() const {
  Checkpoint cp;
  cp.disks = disks_;
  cp.next_disk_id = next_disk_id_;
  cp.next_chunk_id = next_chunk_id_;
  return cp;
}

void Master::Restore(const Checkpoint& checkpoint) {
  disks_ = checkpoint.disks;
  next_disk_id_ = checkpoint.next_disk_id;
  next_chunk_id_ = checkpoint.next_chunk_id;
  // Every in-flight back-fill pass died with the old process: cancel them so
  // late callbacks fall silent, then rebuild speculation state from the
  // restored layouts below (spec_replicas/spec_extents are checkpointed
  // metadata, so an acked speculative write survives the master crash).
  std::vector<ChunkId> old_spec;
  for (auto& [id, st] : spec_) {
    old_spec.push_back(id);
    CancelSpecPass(st.get());
  }
  spec_.clear();
  // Rebuild the chunk index; leases are deliberately NOT restored — clients
  // re-acquire them after a master restart (their timing constraints make
  // interleaving impossible, §4.1).
  chunk_refs_.clear();
  ec_shards_.clear();
  for (auto& [disk_id, meta] : disks_) {
    meta.lease_holder = 0;
    meta.lease_expiry = 0;
    for (size_t i = 0; i < meta.chunks.size(); ++i) {
      chunk_refs_[meta.chunks[i].chunk] = ChunkRef{disk_id, i};
      const ChunkLayout& layout = meta.chunks[i];
      if (layout.tier == ChunkTier::kEc) {
        for (size_t s = 0; s < layout.ec_shards.size(); ++s) {
          ec_shards_[layout.ec_shards[s].shard_chunk] =
              EcShardInfo{layout.chunk, static_cast<int>(s)};
        }
      }
    }
  }
  // Chunks that were speculating before the restore but not in the
  // checkpoint would otherwise hold their migration mark forever.
  for (ChunkId id : old_spec) {
    ChunkLayout* layout = FindLayout(id);
    if (layout == nullptr || !layout->speculating()) {
      FinishMigration(id);
    }
  }
  // Restart the back-fill for every speculating chunk in the checkpoint and
  // re-key the tier migrator's candidate queues (tiers may have moved
  // relative to what it last observed).
  for (auto& [disk_id, meta] : disks_) {
    (void)disk_id;
    for (ChunkLayout& layout : meta.chunks) {
      if (layout.speculating()) {
        migrating_.insert(layout.chunk);
        spec_[layout.chunk] = std::make_unique<SpecState>();
        ++tier_stats_.spec_resumes;
        ChunkId chunk = layout.chunk;
        sim_->After(0, [this, chunk]() { StartSpecBackfill(chunk); });
      }
      NotifyTierChanged(layout.chunk, layout.tier == ChunkTier::kEc);
    }
  }
}

ChunkLayout* Master::FindLayout(ChunkId chunk) {
  auto ref = chunk_refs_.find(chunk);
  if (ref == chunk_refs_.end()) {
    return nullptr;
  }
  return &disks_[ref->second.disk].chunks[ref->second.index];
}

void Master::TransferChunk(ChunkId chunk, ChunkServer* source, ChunkServer* target,
                           uint64_t chunk_size, std::function<void(Status, uint64_t)> done,
                           qos::ServiceClass cls) {
  if (admission_ != nullptr) {
    // Cluster-wide per-source pacing: the piece pump starts only once this
    // source device has a free transfer slot, and holds it until `done`.
    auto priority = cls == qos::ServiceClass::kScrub
                        ? scrub::RecoveryAdmission::Priority::kScrub
                        : scrub::RecoveryAdmission::Priority::kRecovery;
    uint64_t source_id = source->id();
    auto released = [this, source_id, done = std::move(done)](Status s, uint64_t version) {
      admission_->Release(source_id);
      done(s, version);
    };
    admission_->Acquire(source_id, priority,
                        [this, chunk, source, target, chunk_size, cls,
                         released = std::move(released)]() mutable {
                          TransferChunkNow(chunk, source, target, chunk_size,
                                           std::move(released), cls);
                        });
    return;
  }
  TransferChunkNow(chunk, source, target, chunk_size, std::move(done), cls);
}

void Master::TransferRanges(ChunkId chunk, ChunkServer* source, ChunkServer* target,
                            std::vector<Interval> ranges, std::function<void(Status)> done,
                            qos::ServiceClass cls) {
  if (admission_ != nullptr && !ranges.empty()) {
    auto priority = cls == qos::ServiceClass::kScrub
                        ? scrub::RecoveryAdmission::Priority::kScrub
                        : scrub::RecoveryAdmission::Priority::kRecovery;
    uint64_t source_id = source->id();
    auto released = [this, source_id, done = std::move(done)](Status s) {
      admission_->Release(source_id);
      done(s);
    };
    admission_->Acquire(source_id, priority,
                        [this, chunk, source, target, cls, ranges = std::move(ranges),
                         released = std::move(released)]() mutable {
                          TransferRangesNow(chunk, source, target, std::move(ranges),
                                            std::move(released), cls);
                        });
    return;
  }
  TransferRangesNow(chunk, source, target, std::move(ranges), std::move(done), cls);
}

void Master::TransferChunkNow(ChunkId chunk, ChunkServer* source, ChunkServer* target,
                              uint64_t chunk_size, std::function<void(Status, uint64_t)> done,
                              qos::ServiceClass cls) {
  // Sliding window of `recovery_window_` pieces, each `recovery_piece_`
  // bytes: read at the source (journal-aware), ship over the network, write
  // at the target. Saturates the target's inbound NIC when sources are fast
  // enough — the Fig. 12 bound.
  struct State {
    uint64_t next_offset = 0;
    uint64_t completed = 0;
    uint64_t total_pieces = 0;
    uint64_t source_version = 0;
    bool failed = false;
    bool waiting = false;
    std::function<void(Status, uint64_t)> done;
  };
  auto st = std::make_shared<State>();
  st->total_pieces = (chunk_size + recovery_piece_ - 1) / recovery_piece_;
  st->done = std::move(done);

  auto pump = std::make_shared<std::function<void()>>();
  *pump = [this, chunk, source, target, chunk_size, cls, st, pump]() {
    if (st->failed || st->waiting) {
      return;
    }
    // QoS backpressure: when the target device's scheduler reports the
    // recovery class past its queue-depth high watermark, pause issuing
    // pieces until it drains to the low watermark (in-flight pieces finish).
    storage::IoGate* gate = target->store()->device()->gate();
    if (gate != nullptr && gate->ShouldThrottle(cls)) {
      st->waiting = true;
      gate->WhenReady(cls, [st, pump]() {
        st->waiting = false;
        (*pump)();
      });
      return;
    }
    while (st->next_offset < chunk_size &&
           (st->next_offset / recovery_piece_) - st->completed <
               static_cast<uint64_t>(recovery_window_)) {
      uint64_t offset = st->next_offset;
      uint64_t len = std::min(recovery_piece_, chunk_size - offset);
      st->next_offset += len;
      std::shared_ptr<std::vector<uint8_t>> buf;
      if (recovery_carries_data_) {
        buf = std::make_shared<std::vector<uint8_t>>(len);
      }
      void* buf_ptr = buf ? buf->data() : nullptr;
      source->HandleRecoveryRead(
          chunk, offset, len, buf_ptr,
          [this, chunk, source, target, offset, len, cls, st, pump, buf](const Status& s,
                                                                         uint64_t version) {
            if (st->failed) {
              return;
            }
            if (!s.ok()) {
              st->failed = true;
              st->done(s, 0);
              return;
            }
            st->source_version = std::max(st->source_version, version);
            uint64_t wire = net::WireBytes(net::MessageType::kRecoveryData, len);
            transport_->Send(source->node(), target->node(), wire,
                             [this, chunk, target, offset, len, cls, st, pump, buf]() {
                               target->HandleRecoveryWrite(
                                   chunk, offset, len, buf ? buf->data() : nullptr,
                                   [this, len, st, pump, buf](const Status& s2) {
                                     if (st->failed) {
                                       return;
                                     }
                                     if (!s2.ok()) {
                                       st->failed = true;
                                       st->done(s2, 0);
                                       return;
                                     }
                                     ++st->completed;
                                     recovery_stats_.bytes_transferred += len;
                                     if (st->completed == st->total_pieces) {
                                       st->done(OkStatus(), st->source_version);
                                     } else {
                                       (*pump)();
                                     }
                                   },
                                   cls);
                             });
          },
          cls);
    }
  };
  (*pump)();
}

void Master::TransferRangesNow(ChunkId chunk, ChunkServer* source, ChunkServer* target,
                               std::vector<Interval> ranges, std::function<void(Status)> done,
                               qos::ServiceClass cls) {
  if (ranges.empty()) {
    sim_->After(0, [done = std::move(done)]() { done(OkStatus()); });
    return;
  }
  auto remaining = std::make_shared<size_t>(ranges.size());
  auto failed = std::make_shared<bool>(false);
  auto done_shared = std::make_shared<std::function<void(Status)>>(std::move(done));
  for (const Interval& range : ranges) {
    std::shared_ptr<std::vector<uint8_t>> buf;
    if (recovery_carries_data_) {
      buf = std::make_shared<std::vector<uint8_t>>(range.length);
    }
    void* buf_ptr = buf ? buf->data() : nullptr;
    source->HandleRecoveryRead(
        chunk, range.offset, range.length, buf_ptr,
        [this, chunk, source, target, range, cls, remaining, failed, done_shared,
         buf](const Status& s, uint64_t) {
          if (*failed) {
            return;
          }
          if (!s.ok()) {
            *failed = true;
            (*done_shared)(s);
            return;
          }
          uint64_t wire = net::WireBytes(net::MessageType::kRecoveryData, range.length);
          transport_->Send(
              source->node(), target->node(), wire,
              [this, chunk, target, range, cls, remaining, failed, done_shared, buf]() {
                target->HandleRecoveryWrite(
                    chunk, range.offset, range.length, buf ? buf->data() : nullptr,
                    [this, range, remaining, failed, done_shared, buf](const Status& s2) {
                      if (*failed) {
                        return;
                      }
                      if (!s2.ok()) {
                        *failed = true;
                        (*done_shared)(s2);
                        return;
                      }
                      recovery_stats_.bytes_transferred += range.length;
                      if (--*remaining == 0) {
                        (*done_shared)(OkStatus());
                      }
                    },
                    cls);
              });
        },
        cls);
  }
}

void Master::ReportReplicaFailure(ChunkId chunk, ServerId failed,
                                  std::function<void(Status)> done) {
  // EC shard ids route to stripe repair, never to replica recovery: a shard
  // has no replicas — its redundancy is the stripe's parity.
  auto shard_it = ec_shards_.find(chunk);
  if (shard_it != ec_shards_.end()) {
    ChunkLayout* parent_layout = FindLayout(shard_it->second.parent);
    if (parent_layout == nullptr || parent_layout->tier != ChunkTier::kEc) {
      done(NotFound("stale shard"));
      return;
    }
    const EcShardRef& sh = parent_layout->ec_shards[shard_it->second.index];
    if (failed < servers_.size() && !servers_[failed]->crashed() && sh.server == failed) {
      done(OkStatus());  // transient slowness; the shard's server is alive
      return;
    }
    RepairEcShard(shard_it->second.parent, shard_it->second.index, std::move(done));
    return;
  }
  ChunkLayout* layout = FindLayout(chunk);
  if (layout == nullptr) {
    done(NotFound("unknown chunk"));
    return;
  }
  if (layout->tier == ChunkTier::kEc) {
    // Stale report against an already-demoted chunk: nothing to repair here
    // (the client's refresh will discover the EC layout).
    done(OkStatus());
    return;
  }
  auto ref = chunk_refs_.find(chunk);
  const DiskMeta& disk = disks_[ref->second.disk];

  // Verify the suspicion before acting (§4.2.2: Ursa deliberately avoids
  // declaring replicas dead on a timeout alone). A client timeout can stem
  // from transient slowness or from a DIFFERENT stale replica failing the
  // quorum; replacing a healthy replica would discard its (possibly
  // freshest) data. If the suspect responds, repair lagging replicas
  // instead of changing the view.
  if (failed < servers_.size() && !servers_[failed]->crashed()) {
    auto remaining = std::make_shared<size_t>(layout->replicas.size());
    auto done_shared = std::make_shared<std::function<void(Status)>>(std::move(done));
    for (const ReplicaRef& r : layout->replicas) {
      RepairReplica(chunk, r.server, [remaining, done_shared](Status) {
        if (--*remaining == 0) {
          (*done_shared)(OkStatus());
        }
      });
    }
    return;
  }

  // Collect survivors and their versions (the master "tries to collect
  // version numbers from a majority of replicas", §4.2.2).
  std::vector<ReplicaRef> survivors;
  bool failed_was_primary_capable = false;
  for (const ReplicaRef& r : layout->replicas) {
    if (r.server == failed) {
      failed_was_primary_capable = r.on_ssd;
      continue;
    }
    if (!servers_[r.server]->crashed()) {
      survivors.push_back(r);
    }
  }
  if (survivors.empty()) {
    done(Unavailable("no surviving replica: data loss"));
    return;
  }

  uint64_t version_h = 0;
  ChunkServer* source = nullptr;
  const ReplicaRef* source_ref = nullptr;
  for (const ReplicaRef& r : survivors) {
    Result<ChunkServer::ReplicaState> st = servers_[r.server]->GetState(chunk);
    if (!st.ok()) {
      continue;
    }
    // Version first (a stale source would hide committed writes); at equal
    // versions prefer healthy over demoted, SSD over HDD, and lower health
    // score (a gray-slow source would drag the whole transfer).
    if (source == nullptr || st->version > version_h ||
        (st->version == version_h && PreferReplica(r, *source_ref))) {
      version_h = st->version;
      source = servers_[r.server];
      source_ref = &r;
    }
  }
  if (source == nullptr) {
    done(Unavailable("no readable survivor"));
    return;
  }

  // Allocate the replacement on a machine hosting no survivor.
  std::vector<MachineId> exclude;
  for (const ReplicaRef& r : survivors) {
    exclude.push_back(placement_.MachineOf(r.server));
  }
  ChunkServer* target = nullptr;
  // Two sweeps: prefer a healthy replacement, but accept a demoted one over
  // leaving the chunk under-replicated.
  for (int allow_demoted = 0; allow_demoted < 2 && target == nullptr; ++allow_demoted) {
    for (uint64_t salt = chunk; salt < chunk + num_servers(); ++salt) {
      Result<ServerId> candidate =
          placement_.PlaceReplacement(failed_was_primary_capable, exclude, salt);
      if (!candidate.ok()) {
        continue;
      }
      ChunkServer* server = servers_[*candidate];
      // Never reuse the failed server or any server already hosting the chunk
      // (possible on small clusters where every machine holds a survivor).
      if (*candidate != failed && !server->crashed() && !server->HasChunk(chunk) &&
          (allow_demoted == 1 || !IsDemoted(*candidate))) {
        target = server;
        break;
      }
    }
  }
  if (target == nullptr) {
    done(ResourceExhausted("no replacement server available"));
    return;
  }
  uint64_t new_view = layout->view + 1;
  Status alloc = target->AllocateChunk(chunk, new_view, ref->second.disk);
  if (!alloc.ok()) {
    done(alloc);
    return;
  }

  uint64_t chunk_size = disk.chunk_size;
  ChunkServer* source_ptr = source;
  TransferChunk(
      chunk, source, target, chunk_size,
      [this, chunk, layout, failed, source_ptr, target, new_view, version_h, chunk_size,
       done = std::move(done)](const Status& s, uint64_t) {
        if (!s.ok()) {
          done(s);
          return;
        }
        // Before installing the new view, bring every LAGGING survivor up to
        // versionH with real data (incremental repair from the source's
        // journal lite, or a full copy when history is gone) — a bare
        // version fast-forward would hide lost writes.
        auto laggards = std::make_shared<std::vector<ChunkServer*>>();
        for (const ReplicaRef& r : layout->replicas) {
          if (r.server == failed || servers_[r.server]->crashed()) {
            continue;
          }
          Result<ChunkServer::ReplicaState> st = servers_[r.server]->GetState(chunk);
          if (st.ok() && st->version < version_h) {
            laggards->push_back(servers_[r.server]);
          }
        }
        auto finish = [this, chunk, layout, failed, target, new_view, version_h,
                       done = std::move(done)]() {
          // Install the new view. Writes kept committing during the
          // transfer, so survivors may have advanced past versionH — never
          // move a replica's version backward, only adopt the new view.
          target->SetState(chunk, version_h, new_view);
          for (ReplicaRef& r : layout->replicas) {
            if (r.server == failed) {
              r = ReplicaRef{target->id(), target->node(), target->on_ssd(),
                             IsDemoted(target->id())};
            } else {
              Result<ChunkServer::ReplicaState> st = servers_[r.server]->GetState(chunk);
              if (st.ok()) {
                servers_[r.server]->SetState(chunk, std::max(st->version, version_h),
                                             new_view);
              }
            }
          }
          layout->view = new_view;
          // Keep the preferred primary first (a healthy SSD replica if any,
          // health-score tiebroken).
          SortLayout(layout);
          ++recovery_stats_.chunks_recovered;
          ++recovery_stats_.view_changes;
          done(OkStatus());
        };
        if (laggards->empty()) {
          finish();
          return;
        }
        auto remaining = std::make_shared<size_t>(laggards->size());
        auto finish_shared = std::make_shared<std::function<void()>>(std::move(finish));
        for (ChunkServer* laggard : *laggards) {
          Result<ChunkServer::ReplicaState> st = laggard->GetState(chunk);
          uint64_t from_version = st.ok() ? st->version : 0;
          std::vector<Interval> ranges;
          auto on_done = [remaining, finish_shared](Status) {
            if (--*remaining == 0) {
              (*finish_shared)();
            }
          };
          if (source_ptr->ModifiedSince(chunk, from_version, &ranges)) {
            ++recovery_stats_.incremental_repairs;
            TransferRanges(chunk, source_ptr, laggard, std::move(ranges), on_done);
          } else {
            ++recovery_stats_.full_copies;
            TransferChunk(chunk, source_ptr, laggard, chunk_size,
                          [on_done](Status s2, uint64_t) { on_done(s2); });
          }
        }
      });
}

void Master::RepairChunkReplicas(ChunkId chunk) {
  ChunkLayout* layout = FindLayout(chunk);
  if (layout == nullptr) {
    return;
  }
  if (layout->tier == ChunkTier::kEc) {
    if (layout->speculating()) {
      // Mid-speculation the back-fill pass owns the stripe; its retry loop
      // (and the post-commit stale-replica repair) covers every failure.
      return;
    }
    // Stripe healing: rebuild any shard stranded on a crashed server.
    for (size_t i = 0; i < layout->ec_shards.size(); ++i) {
      if (servers_[layout->ec_shards[i].server]->crashed()) {
        RepairEcShard(chunk, static_cast<int>(i), [](Status) {});
      }
    }
    return;
  }
  for (const ReplicaRef& r : layout->replicas) {
    if (!servers_[r.server]->crashed()) {
      RepairReplica(chunk, r.server, [](Status) {});
    }
  }
}

void Master::RepairCorruptRange(ChunkId chunk, ServerId corrupt_server, uint64_t offset,
                                uint64_t length, std::function<void(Status)> done) {
  if (IsEcShard(chunk)) {
    // A corrupt shard range has no peer replica to copy from: reconstruct
    // the bytes from the stripe's other shards instead.
    ++recovery_stats_.corruption_repairs;
    RepairEcShardRange(chunk, offset, length, std::move(done));
    return;
  }
  ChunkLayout* layout = FindLayout(chunk);
  if (layout == nullptr) {
    sim_->After(0, [done = std::move(done)]() { done(NotFound("unknown chunk")); });
    return;
  }
  // Freshest alive replica OTHER than the damaged one. Version order does not
  // gate this repair: the corrupt replica may well hold the highest version —
  // the flipped bits destroyed its data, not its metadata.
  ChunkServer* source = nullptr;
  uint64_t best_version = 0;
  const ReplicaRef* best_ref = nullptr;
  for (const ReplicaRef& r : layout->replicas) {
    if (r.server == corrupt_server || servers_[r.server]->crashed()) {
      continue;
    }
    Result<ChunkServer::ReplicaState> st = servers_[r.server]->GetState(chunk);
    if (!st.ok()) {
      continue;
    }
    if (source == nullptr || st->version > best_version ||
        (st->version == best_version && PreferReplica(r, *best_ref))) {
      best_version = st->version;
      source = servers_[r.server];
      best_ref = &r;
    }
  }
  if (source == nullptr) {
    // No healthy replica to heal from: leave the range quarantined (reads
    // keep failing with kCorruption rather than serving stale bytes).
    sim_->After(0, [done = std::move(done)]() {
      done(Unavailable("no healthy replica for corruption repair"));
    });
    return;
  }
  ++recovery_stats_.corruption_repairs;
  ChunkServer* target = servers_[corrupt_server];
  // Scrub repair: lowest-priority class — it races nothing (reads of the
  // range stay quarantined until `done`).
  TransferRanges(chunk, source, target, {Interval{offset, length}}, std::move(done),
                 qos::ServiceClass::kScrub);
}

void Master::RepairReplica(ChunkId chunk, ServerId lagging, std::function<void(Status)> done) {
  ChunkLayout* layout = FindLayout(chunk);
  if (layout == nullptr) {
    done(NotFound("unknown chunk"));
    return;
  }
  if (layout->tier == ChunkTier::kEc) {
    done(OkStatus());  // no replicas to repair; shards heal via RepairEcShard
    return;
  }
  ChunkServer* laggard = servers_[lagging];
  Result<ChunkServer::ReplicaState> lag_state = laggard->GetState(chunk);
  if (!lag_state.ok()) {
    done(lag_state.status());
    return;
  }

  // Find the freshest peer (healthy over demoted, SSD over HDD at ties).
  uint64_t version_h = lag_state->version;
  ChunkServer* source = nullptr;
  const ReplicaRef* source_ref = nullptr;
  for (const ReplicaRef& r : layout->replicas) {
    if (r.server == lagging || servers_[r.server]->crashed()) {
      continue;
    }
    Result<ChunkServer::ReplicaState> st = servers_[r.server]->GetState(chunk);
    if (!st.ok() || st->version <= lag_state->version) {
      continue;
    }
    if (source == nullptr || st->version > version_h ||
        (st->version == version_h && PreferReplica(r, *source_ref))) {
      version_h = st->version;
      source = servers_[r.server];
      source_ref = &r;
    }
  }
  if (source == nullptr) {
    done(OkStatus());  // already up to date
    return;
  }

  auto ref = chunk_refs_.find(chunk);
  uint64_t chunk_size = disks_[ref->second.disk].chunk_size;
  uint64_t target_version = version_h;
  uint64_t view = layout->view;

  // The laggard may receive replications while the repair transfer runs;
  // never move its version backward when installing the repaired state.
  auto install = [laggard, chunk, target_version, view](const Status& s) {
    if (s.ok()) {
      Result<ChunkServer::ReplicaState> now = laggard->GetState(chunk);
      uint64_t v = now.ok() ? std::max(now->version, target_version) : target_version;
      laggard->SetState(chunk, v, view);
    }
  };
  std::vector<Interval> ranges;
  if (source->ModifiedSince(chunk, lag_state->version, &ranges)) {
    ++recovery_stats_.incremental_repairs;
    TransferRanges(chunk, source, laggard, std::move(ranges),
                   [install, done = std::move(done)](Status s) {
                     install(s);
                     done(s);
                   });
  } else {
    // History GC'd: transfer the whole chunk (§4.2.1).
    ++recovery_stats_.full_copies;
    TransferChunk(chunk, source, laggard, chunk_size,
                  [install, done = std::move(done)](Status s, uint64_t) {
                    install(s);
                    done(s);
                  });
  }
}

// ---- Tiered placement (DESIGN.md §13) ----

// Shared completion state for one migration. Exactly one of the transfer
// callbacks, the commit step, or the timeout finishes the op; everyone else
// sees `finished` and backs off.
struct Master::MigrationOp {
  ChunkId chunk = 0;
  bool finished = false;
  bool granted = false;          // holding an admission slot
  uint64_t admission_source = 0;
  sim::EventId timeout_event = 0;
  // Chunks allocated by this op; freed again if it aborts before commit.
  std::vector<std::pair<ServerId, ChunkId>> allocated;
  std::function<void(Status)> done;
};

// One attempt at back-filling a speculatively-promoted chunk from its
// shards (DESIGN.md §13.6). Exactly one of the final write completion, the
// timeout, or a cancel finishes a pass; late callbacks see `finished` or
// `canceled` and fall silent.
struct Master::SpecPass {
  ChunkId chunk = 0;
  bool finished = false;
  bool canceled = false;
  bool granted = false;          // holding an admission slot
  uint64_t admission_source = 0;
  sim::EventId timeout_event = 0;
  uint64_t chunk_size = 0;
  // Reconstructed old image: chunk bytes followed by m parity slots
  // (null in timing-only mode).
  std::shared_ptr<std::vector<uint8_t>> image;
  // Spec replicas alive at pass start — the set the commit installs. Must
  // be a majority of the spec set so it is guaranteed to intersect every
  // client write quorum (the freshest acked data is on some member).
  std::vector<ServerId> targets;
};

struct Master::SpecState {
  std::shared_ptr<SpecPass> pass;  // null between retries
  int retries = 0;
};

// Defined after SpecState so ~unique_ptr<SpecState> sees a complete type.
Master::~Master() = default;

ec::ReedSolomon* Master::Codec(int k, int m) {
  auto key = std::make_pair(k, m);
  auto it = codecs_.find(key);
  if (it == codecs_.end()) {
    it = codecs_.emplace(key, std::make_unique<ec::ReedSolomon>(k, m)).first;
  }
  return it->second.get();
}

Result<std::vector<ServerId>> Master::PickShardServers(int n, uint64_t salt) const {
  // Round-robin machines so a k+m stripe spreads as widely as the cluster
  // allows; with fewer machines than shards, machines host several shards
  // but always on distinct servers.
  size_t machines = placement_.num_machines();
  std::vector<std::vector<ServerId>> by_machine(machines);
  for (ServerId s = 0; s < static_cast<ServerId>(servers_.size()); ++s) {
    if (!servers_[s]->crashed()) {
      by_machine[placement_.MachineOf(s)].push_back(s);
    }
  }
  std::vector<ServerId> out;
  std::vector<size_t> cursor(machines, 0);
  bool progress = true;
  while (static_cast<int>(out.size()) < n && progress) {
    progress = false;
    for (size_t i = 0; i < machines && static_cast<int>(out.size()) < n; ++i) {
      size_t mi = (salt + i) % machines;
      if (cursor[mi] < by_machine[mi].size()) {
        out.push_back(by_machine[mi][cursor[mi]++]);
        progress = true;
      }
    }
  }
  if (static_cast<int>(out.size()) < n) {
    return ResourceExhausted("too few alive servers for an EC stripe");
  }
  return out;
}

void Master::ReadChunkPieces(ChunkServer* server, ChunkId chunk, uint64_t size, uint8_t* out,
                             std::shared_ptr<void> hold, qos::ServiceClass cls,
                             std::function<void(Status, uint64_t)> done) {
  struct State {
    uint64_t next_offset = 0;
    uint64_t completed = 0;
    uint64_t total_pieces = 0;
    uint64_t version = 0;
    bool failed = false;
    std::shared_ptr<void> hold;
    std::function<void(Status, uint64_t)> done;
  };
  auto st = std::make_shared<State>();
  st->total_pieces = (size + recovery_piece_ - 1) / recovery_piece_;
  st->hold = std::move(hold);
  st->done = std::move(done);
  auto pump = std::make_shared<std::function<void()>>();
  *pump = [this, server, chunk, size, out, cls, st, pump]() {
    while (!st->failed && st->next_offset < size &&
           (st->next_offset / recovery_piece_) - st->completed <
               static_cast<uint64_t>(recovery_window_)) {
      uint64_t offset = st->next_offset;
      uint64_t len = std::min(recovery_piece_, size - offset);
      st->next_offset += len;
      server->HandleRecoveryRead(
          chunk, offset, len, out == nullptr ? nullptr : out + offset,
          [st, pump](const Status& s, uint64_t version) {
            if (st->failed) {
              return;
            }
            if (!s.ok()) {
              st->failed = true;
              st->done(s, 0);
              return;
            }
            st->version = std::max(st->version, version);
            if (++st->completed == st->total_pieces) {
              st->done(OkStatus(), st->version);
            } else {
              (*pump)();
            }
          },
          cls);
    }
  };
  (*pump)();
}

void Master::WriteChunkPieces(ChunkServer* target, ChunkId chunk, uint64_t size,
                              const uint8_t* data, std::shared_ptr<void> hold,
                              net::NodeId from_node, qos::ServiceClass cls,
                              std::function<void(Status)> done, bool shielded) {
  struct State {
    uint64_t next_offset = 0;
    uint64_t completed = 0;
    uint64_t total_pieces = 0;
    bool failed = false;
    bool waiting = false;
    std::shared_ptr<void> hold;
    std::function<void(Status)> done;
  };
  auto st = std::make_shared<State>();
  st->total_pieces = (size + recovery_piece_ - 1) / recovery_piece_;
  st->hold = std::move(hold);
  st->done = std::move(done);
  auto pump = std::make_shared<std::function<void()>>();
  *pump = [this, target, chunk, size, data, from_node, cls, st, pump, shielded]() {
    if (st->failed || st->waiting) {
      return;
    }
    storage::IoGate* gate = target->store()->device()->gate();
    if (gate != nullptr && gate->ShouldThrottle(cls)) {
      st->waiting = true;
      gate->WhenReady(cls, [st, pump]() {
        st->waiting = false;
        (*pump)();
      });
      return;
    }
    while (st->next_offset < size &&
           (st->next_offset / recovery_piece_) - st->completed <
               static_cast<uint64_t>(recovery_window_)) {
      uint64_t offset = st->next_offset;
      uint64_t len = std::min(recovery_piece_, size - offset);
      st->next_offset += len;
      uint64_t wire = net::WireBytes(net::MessageType::kRecoveryData, len);
      transport_->Send(from_node, target->node(), wire,
                       [this, target, chunk, offset, len, data, cls, st, pump, shielded]() {
                         auto piece_done = [this, len, st, pump](const Status& s) {
                           if (st->failed) {
                             return;
                           }
                           if (!s.ok()) {
                             st->failed = true;
                             st->done(s);
                             return;
                           }
                           recovery_stats_.bytes_transferred += len;
                           if (++st->completed == st->total_pieces) {
                             st->done(OkStatus());
                           } else {
                             (*pump)();
                           }
                         };
                         const uint8_t* src = data == nullptr ? nullptr : data + offset;
                         if (shielded) {
                           target->HandleBackfillWrite(chunk, offset, len,
                                                       ursa::BufferView::Unowned(src, len),
                                                       std::move(piece_done), cls);
                         } else {
                           target->HandleRecoveryWrite(chunk, offset, len, src,
                                                       std::move(piece_done), cls);
                         }
                       });
    }
  };
  (*pump)();
}

void Master::CompleteMigration(std::shared_ptr<MigrationOp> op, Status s) {
  if (op->finished) {
    return;
  }
  op->finished = true;
  if (op->timeout_event != 0) {
    sim_->Cancel(op->timeout_event);
  }
  if (op->granted) {
    admission_->Release(op->admission_source);
  }
  if (!s.ok()) {
    // Roll back anything this op allocated but never committed.
    for (const auto& [sid, cid] : op->allocated) {
      if (!servers_[sid]->crashed() && servers_[sid]->HasChunk(cid)) {
        servers_[sid]->FreeChunk(cid);
      }
      ec_shards_.erase(cid);
      if (heat_ != nullptr) {
        heat_->ClearAlias(cid);
      }
    }
  }
  FinishMigration(op->chunk);
  if (op->done) {
    op->done(std::move(s));
  }
}

void Master::FinishMigration(ChunkId chunk) {
  migrating_.erase(chunk);
  auto it = promote_waiters_.find(chunk);
  if (it == promote_waiters_.end()) {
    return;
  }
  std::vector<std::function<void(Status)>> waiters = std::move(it->second);
  promote_waiters_.erase(it);
  for (auto& waiter : waiters) {
    // Re-enter through the front door: if the finished migration was the
    // promotion, this completes immediately via the idempotent path.
    sim_->After(0, [this, chunk, waiter = std::move(waiter)]() mutable {
      PromoteChunk(chunk, false, std::move(waiter));
    });
  }
}

// ---- Speculative write promotion (DESIGN.md §13.6) ----

void Master::BeginWritePromote(ChunkId chunk, std::function<void(Status)> done) {
  ChunkLayout* layout = FindLayout(chunk);
  if (layout == nullptr) {
    sim_->After(0, [done = std::move(done)]() { done(NotFound("unknown chunk")); });
    return;
  }
  if (layout->tier == ChunkTier::kReplicated && migrating_.count(chunk) == 0) {
    sim_->After(0, [done = std::move(done)]() { done(OkStatus()); });
    return;
  }
  if (layout->speculating()) {
    // Join the in-flight speculation: the caller can write immediately.
    sim_->After(0, [done = std::move(done)]() { done(OkStatus()); });
    return;
  }
  if (migrating_.count(chunk) > 0) {
    // A demote/promote/shard repair owns the chunk; queue behind it (the
    // waiter re-enters through PromoteChunk's idempotent path).
    promote_waiters_[chunk].push_back(std::move(done));
    return;
  }
  if (!speculative_promote_ || layout->tier != ChunkTier::kEc) {
    PromoteChunk(chunk, /*write_triggered=*/true, std::move(done));
    return;
  }

  // Place the future replica set exactly like a blocking promotion would.
  auto ref = chunk_refs_.find(chunk);
  const DiskMeta& disk = disks_[ref->second.disk];
  const int replication = disk.replication;
  std::vector<ServerId> targets;
  std::vector<MachineId> used;
  auto try_add = [this, chunk, &targets, &used](ServerId sid) {
    ChunkServer* server = servers_[sid];
    if (server->crashed() || server->HasChunk(chunk)) {
      return;
    }
    targets.push_back(sid);
    used.push_back(placement_.MachineOf(sid));
  };
  Result<std::vector<ServerId>> placed =
      placement_.PlaceChunk(ref->second.index, replication, disk.id * 7919);
  if (placed.ok()) {
    for (ServerId sid : *placed) {
      try_add(sid);
    }
  }
  for (uint64_t salt = chunk;
       static_cast<int>(targets.size()) < replication && salt < chunk + 2 * num_servers();
       ++salt) {
    Result<ServerId> cand = placement_.PlaceReplacement(targets.empty(), used, salt);
    if (cand.ok()) {
      try_add(*cand);
    }
  }
  if (static_cast<int>(targets.size()) < replication) {
    // Not enough healthy servers for the fast path; take the blocking one
    // (it shares the shortage, but also its retry/queueing machinery).
    PromoteChunk(chunk, /*write_triggered=*/true, std::move(done));
    return;
  }
  // Allocate all-or-nothing, then install. Targets start at the frozen EC
  // version AND the *current* view: shard reads stay valid and the client
  // needs no resteer — the view bumps only at commit.
  std::vector<ReplicaRef> refs;
  for (size_t i = 0; i < targets.size(); ++i) {
    ChunkServer* server = servers_[targets[i]];
    Status alloc = server->AllocateChunk(chunk, layout->view, disk.id);
    if (!alloc.ok()) {
      for (size_t j = 0; j < i; ++j) {
        servers_[targets[j]]->FreeChunk(chunk);
      }
      PromoteChunk(chunk, /*write_triggered=*/true, std::move(done));
      return;
    }
    server->SetState(chunk, layout->ec_version, layout->view);
    server->EnableWriteShield(chunk);
    refs.push_back(ReplicaRef{targets[i], server->node(), server->on_ssd(),
                              IsDemoted(targets[i])});
  }
  layout->spec_replicas = std::move(refs);
  layout->spec_extents.clear();
  migrating_.insert(chunk);
  spec_[chunk] = std::make_unique<SpecState>();
  StartSpecBackfill(chunk);
  // The ack gate is gone: the caller may write as soon as this fires.
  sim_->After(0, [done = std::move(done)]() { done(OkStatus()); });
}

void Master::RegisterSpecExtent(ChunkId chunk, uint64_t offset, uint64_t length) {
  ChunkLayout* layout = FindLayout(chunk);
  if (layout == nullptr || !layout->speculating()) {
    return;  // committed (or never speculated) — extents are moot
  }
  InsertInterval(&layout->spec_extents, Interval{offset, length});
}

void Master::CancelSpecPass(SpecState* st) {
  if (st == nullptr || st->pass == nullptr) {
    return;
  }
  st->pass->canceled = true;
  if (st->pass->timeout_event != 0) {
    sim_->Cancel(st->pass->timeout_event);
    st->pass->timeout_event = 0;
  }
  if (st->pass->granted) {
    admission_->Release(st->pass->admission_source);
    st->pass->granted = false;
  }
  st->pass = nullptr;
}

void Master::StartSpecBackfill(ChunkId chunk) {
  auto it = spec_.find(chunk);
  if (it == spec_.end() || it->second->pass != nullptr) {
    return;
  }
  ChunkLayout* layout = FindLayout(chunk);
  if (layout == nullptr || layout->tier != ChunkTier::kEc || !layout->speculating()) {
    return;  // committed or vanished while the retry was pending
  }
  auto pass = std::make_shared<SpecPass>();
  pass->chunk = chunk;
  it->second->pass = pass;
  pass->timeout_event = sim_->After(migration_timeout_, [this, chunk, pass]() {
    pass->timeout_event = 0;
    FailSpecPass(chunk, pass, TimedOut("spec back-fill timed out"));
  });
  // First alive shard is the admission source, as in PromoteChunk. The
  // back-fill unblocks the chunk's EC capacity reclaim but no ack, so it
  // competes at recovery priority like any promotion finishing a write.
  ChunkServer* admit_on = nullptr;
  for (const EcShardRef& sh : layout->ec_shards) {
    if (!servers_[sh.server]->crashed()) {
      admit_on = servers_[sh.server];
      break;
    }
  }
  if (admit_on == nullptr) {
    FailSpecPass(chunk, pass, Unavailable("no alive shard"));
    return;
  }
  if (admission_ != nullptr) {
    pass->admission_source = admit_on->id();
    admission_->Acquire(admit_on->id(), scrub::RecoveryAdmission::Priority::kRecovery,
                        [this, chunk, pass]() {
                          if (pass->finished || pass->canceled) {
                            admission_->Release(pass->admission_source);
                            return;
                          }
                          pass->granted = true;
                          RunSpecBackfill(chunk, pass);
                        });
  } else {
    RunSpecBackfill(chunk, pass);
  }
}

void Master::RunSpecBackfill(ChunkId chunk, std::shared_ptr<SpecPass> pass) {
  if (pass->finished || pass->canceled) {
    return;
  }
  ChunkLayout* layout = FindLayout(chunk);
  if (layout == nullptr || layout->tier != ChunkTier::kEc || !layout->speculating()) {
    FailSpecPass(chunk, pass, Aborted("layout changed"));
    return;
  }
  auto ref = chunk_refs_.find(chunk);
  const DiskMeta& disk = disks_[ref->second.disk];
  const int k = layout->ec_k;
  const int m = layout->ec_m;
  const int n = k + m;
  const uint64_t shard_size = layout->ec_shard_size;
  pass->chunk_size = disk.chunk_size;
  const std::vector<EcShardRef> shards = layout->ec_shards;

  // The commit installs exactly the replicas this pass back-fills, so fix
  // the target set now: every spec replica alive at this instant. A
  // majority of the spec set is required — it then intersects every client
  // write quorum, so the max-version committed replica holds all acked data.
  pass->targets.clear();
  for (const ReplicaRef& r : layout->spec_replicas) {
    if (!servers_[r.server]->crashed()) {
      pass->targets.push_back(r.server);
    }
  }
  if (pass->targets.size() < layout->spec_replicas.size() / 2 + 1) {
    FailSpecPass(chunk, pass, Unavailable("spec replica majority down"));
    return;
  }

  std::vector<bool> alive(n);
  for (int i = 0; i < n; ++i) {
    alive[i] = !servers_[shards[i].server]->crashed();
  }
  ec::BackfillReadPlan plan;
  Status plan_s = ec::PlanBackfillRead(alive, k, m, &plan);
  if (!plan_s.ok()) {
    FailSpecPass(chunk, pass, plan_s);
    return;
  }
  const bool carry = recovery_carries_data_;
  pass->image = carry ? std::make_shared<std::vector<uint8_t>>(
                            pass->chunk_size + static_cast<uint64_t>(m) * shard_size)
                      : nullptr;
  auto buf = pass->image;
  const uint64_t chunk_size = pass->chunk_size;
  auto slot = [buf, chunk_size, shard_size, k](int i) -> uint8_t* {
    if (!buf) {
      return nullptr;
    }
    return i < k ? buf->data() + static_cast<uint64_t>(i) * shard_size
                 : buf->data() + chunk_size + static_cast<uint64_t>(i - k) * shard_size;
  };

  auto remaining = std::make_shared<int>(k);
  for (int idx : plan.sources) {
    ReadChunkPieces(
        servers_[shards[idx].server], shards[idx].shard_chunk, shard_size, slot(idx), buf,
        qos::ServiceClass::kRecovery,
        [this, chunk, pass, buf, carry, slot, plan, shards, k, m, n, shard_size,
         remaining](const Status& s, uint64_t) {
          if (pass->finished || pass->canceled) {
            return;
          }
          if (!s.ok()) {
            FailSpecPass(chunk, pass, s);
            return;
          }
          if (--*remaining > 0) {
            return;
          }
          // All k source shards are in; rebuild any dead data shards so the
          // image is complete before it streams out.
          if (carry && !plan.missing_data.empty()) {
            std::vector<bool> present(n, false);
            for (int i : plan.sources) {
              present[i] = true;
            }
            ec::ReedSolomon::DecodePlan dplan;
            Status ps = Codec(k, m)->PlanReconstruct(present, plan.missing_data, &dplan);
            if (!ps.ok()) {
              FailSpecPass(chunk, pass, ps);
              return;
            }
            std::vector<const uint8_t*> shard_ptrs(n, nullptr);
            for (int i : plan.sources) {
              shard_ptrs[i] = slot(i);
            }
            std::vector<uint8_t*> outs(n, nullptr);
            for (int t : plan.missing_data) {
              outs[t] = slot(t);
            }
            Codec(k, m)->ReconstructWith(dplan, shard_ptrs, outs, shard_size);
          }
          // Stream the old image into every pass target through the write
          // shield: ranges the client already wrote are subtracted at apply
          // time, so old bytes can never clobber new data.
          auto wremaining = std::make_shared<int>(static_cast<int>(pass->targets.size()));
          net::NodeId from_node = shards[plan.sources[0]].node;
          for (ServerId sid : pass->targets) {
            WriteChunkPieces(servers_[sid], chunk, pass->chunk_size,
                             carry ? buf->data() : nullptr, buf, from_node,
                             qos::ServiceClass::kRecovery,
                             [this, chunk, pass, wremaining](const Status& ws) {
                               if (pass->finished || pass->canceled) {
                                 return;
                               }
                               if (!ws.ok()) {
                                 FailSpecPass(chunk, pass, ws);
                                 return;
                               }
                               if (--*wremaining > 0) {
                                 return;
                               }
                               CommitSpecPromote(chunk, pass);
                             },
                             /*shielded=*/true);
          }
        });
  }
}

void Master::FailSpecPass(ChunkId chunk, std::shared_ptr<SpecPass> pass, Status s) {
  if (pass->finished || pass->canceled) {
    return;
  }
  pass->finished = true;
  if (pass->timeout_event != 0) {
    sim_->Cancel(pass->timeout_event);
  }
  if (pass->granted) {
    admission_->Release(pass->admission_source);
  }
  auto it = spec_.find(chunk);
  if (it == spec_.end() || it->second->pass != pass) {
    return;
  }
  it->second->pass = nullptr;
  ++it->second->retries;
  ++tier_stats_.spec_backfill_retries;
  (void)s;  // the retry is unconditional; the cause only matters for stats
  sim_->After(spec_retry_, [this, chunk]() { StartSpecBackfill(chunk); });
}

void Master::CommitSpecPromote(ChunkId chunk, std::shared_ptr<SpecPass> pass) {
  if (pass->finished || pass->canceled) {
    return;
  }
  ChunkLayout* layout = FindLayout(chunk);
  auto it = spec_.find(chunk);
  if (layout == nullptr || layout->tier != ChunkTier::kEc || !layout->speculating() ||
      it == spec_.end() || it->second->pass != pass) {
    FailSpecPass(chunk, pass, Aborted("layout changed"));
    return;
  }
  pass->finished = true;
  if (pass->timeout_event != 0) {
    sim_->Cancel(pass->timeout_event);
  }
  if (pass->granted) {
    admission_->Release(pass->admission_source);
  }

  const uint64_t new_view = layout->view + 1;
  // Retire the shards (a crashed server keeps its stale image, as in
  // CommitPromote — unreachable and no longer indexed).
  for (const EcShardRef& sh : layout->ec_shards) {
    ChunkServer* server = servers_[sh.server];
    if (!server->crashed() && server->HasChunk(sh.shard_chunk)) {
      server->FreeChunk(sh.shard_chunk);
    }
    ec_shards_.erase(sh.shard_chunk);
    if (heat_ != nullptr) {
      heat_->ClearAlias(sh.shard_chunk);
    }
  }
  layout->ec_shards.clear();
  layout->ec_k = 0;
  layout->ec_m = 0;
  layout->ec_shard_size = 0;
  layout->ec_version = 0;
  layout->tier = ChunkTier::kReplicated;
  layout->replicas.clear();
  std::set<ServerId> committed(pass->targets.begin(), pass->targets.end());
  for (ServerId sid : pass->targets) {
    ChunkServer* server = servers_[sid];
    // SetView, not SetState: the spec replicas carry client-advanced
    // versions — wiping them back to the frozen one would orphan the acked
    // writes. A target that crashed after completing its back-fill misses
    // the install (like SetServerDemoted's view pushes) and resyncs through
    // the stale-replica repair path once restored.
    if (!server->crashed()) {
      server->SetView(chunk, new_view);
    }
    server->DisableWriteShield(chunk);
    layout->replicas.push_back(
        ReplicaRef{sid, server->node(), server->on_ssd(), IsDemoted(sid)});
  }
  // Spec replicas dropped at pass start (crashed then): free any that have
  // come back — their image is a hole-ridden mix and they are not in the
  // new replica set.
  for (const ReplicaRef& r : layout->spec_replicas) {
    if (committed.count(r.server) > 0) {
      continue;
    }
    ChunkServer* server = servers_[r.server];
    if (!server->crashed() && server->HasChunk(chunk)) {
      server->FreeChunk(chunk);
    }
  }
  layout->spec_replicas.clear();
  layout->spec_extents.clear();
  layout->view = new_view;
  SortLayout(layout);
  ++recovery_stats_.view_changes;
  ++tier_stats_.promotions;
  ++tier_stats_.write_promotions;
  ++tier_stats_.spec_promotions;
  spec_.erase(it);
  NotifyTierChanged(chunk, false);
  FinishMigration(chunk);
}

void Master::DemoteChunkToEc(ChunkId chunk, int k, int m, std::function<void(Status)> done) {
  auto fail = [this, &done](Status s) {
    sim_->After(0, [s = std::move(s), done = std::move(done)]() mutable { done(std::move(s)); });
  };
  ChunkLayout* layout = FindLayout(chunk);
  if (layout == nullptr) {
    fail(NotFound("unknown chunk"));
    return;
  }
  if (layout->tier != ChunkTier::kReplicated) {
    fail(AlreadyExists("chunk already EC"));
    return;
  }
  if (migrating_.count(chunk) > 0) {
    fail(Unavailable("migration already in flight"));
    return;
  }
  if (k < 1 || m < 1) {
    fail(InvalidArgument("bad EC geometry"));
    return;
  }
  auto ref = chunk_refs_.find(chunk);
  const DiskMeta& disk = disks_[ref->second.disk];
  if (disk.chunk_size % static_cast<uint64_t>(k) != 0) {
    fail(InvalidArgument("chunk size not divisible by k"));
    return;
  }
  if (heat_ != nullptr && heat_->InflightWrites(chunk) > 0) {
    fail(Unavailable("writes in flight"));
    return;
  }
  // Replay writes into a freed chunk would fail hard (the journal replayer
  // treats a missing backup chunk as unrecoverable), so a replica with
  // pending journal records pins the chunk on the replicated tier.
  uint64_t version0 = 0;
  bool have_version = false;
  ChunkServer* source = nullptr;
  const ReplicaRef* source_ref = nullptr;
  for (const ReplicaRef& r : layout->replicas) {
    ChunkServer* server = servers_[r.server];
    if (server->crashed()) {
      continue;
    }
    if (server->HasJournalBacklog(chunk)) {
      fail(Unavailable("journal backlog pending"));
      return;
    }
    Result<ChunkServer::ReplicaState> st = server->GetState(chunk);
    if (!st.ok()) {
      continue;
    }
    if (!have_version) {
      version0 = st->version;
      have_version = true;
    } else if (st->version != version0) {
      // Divergent replicas mean a repair is due; demote after it heals.
      fail(Unavailable("replicas diverge"));
      return;
    }
    if (source == nullptr || PreferReplica(r, *source_ref)) {
      source = server;
      source_ref = &r;
    }
  }
  if (source == nullptr) {
    fail(Unavailable("no alive replica"));
    return;
  }

  auto op = std::make_shared<MigrationOp>();
  op->chunk = chunk;
  op->done = std::move(done);
  migrating_.insert(chunk);
  op->timeout_event = sim_->After(migration_timeout_, [this, op]() {
    op->timeout_event = 0;
    ++tier_stats_.demote_failures;
    CompleteMigration(op, TimedOut("demotion timed out"));
  });
  if (admission_ != nullptr) {
    op->admission_source = source->id();
    admission_->Acquire(source->id(), scrub::RecoveryAdmission::Priority::kScrub,
                        [this, chunk, k, m, op]() {
                          if (op->finished) {
                            admission_->Release(op->admission_source);
                            return;
                          }
                          op->granted = true;
                          DemoteChunkNow(chunk, k, m, op);
                        });
  } else {
    DemoteChunkNow(chunk, k, m, op);
  }
}

void Master::DemoteChunkNow(ChunkId chunk, int k, int m, std::shared_ptr<MigrationOp> op) {
  if (op->finished) {
    return;
  }
  ChunkLayout* layout = FindLayout(chunk);
  if (layout == nullptr || layout->tier != ChunkTier::kReplicated) {
    ++tier_stats_.demote_failures;
    CompleteMigration(op, Aborted("layout changed"));
    return;
  }
  auto ref = chunk_refs_.find(chunk);
  const DiskMeta& disk = disks_[ref->second.disk];
  const uint64_t chunk_size = disk.chunk_size;
  const uint64_t shard_size = chunk_size / static_cast<uint64_t>(k);
  const int n = k + m;

  // Re-pick the source (state may have shifted while queued for admission).
  ChunkServer* source = nullptr;
  const ReplicaRef* source_ref = nullptr;
  uint64_t version0 = 0;
  for (const ReplicaRef& r : layout->replicas) {
    ChunkServer* server = servers_[r.server];
    if (server->crashed()) {
      continue;
    }
    Result<ChunkServer::ReplicaState> st = server->GetState(chunk);
    if (!st.ok()) {
      continue;
    }
    if (source == nullptr || PreferReplica(r, *source_ref)) {
      source = server;
      source_ref = &r;
      version0 = st->version;
    }
  }
  if (source == nullptr) {
    ++tier_stats_.demote_failures;
    CompleteMigration(op, Unavailable("no alive replica"));
    return;
  }
  Result<std::vector<ServerId>> targets = PickShardServers(n, chunk);
  if (!targets.ok()) {
    ++tier_stats_.demote_failures;
    CompleteMigration(op, targets.status());
    return;
  }
  // Buffer: the chunk image (k contiguous data shards) followed by m parity
  // shards. Timing-only mode (large benches) skips the bytes entirely.
  const bool carry = recovery_carries_data_;
  auto buf = carry ? std::make_shared<std::vector<uint8_t>>(chunk_size +
                                                            static_cast<uint64_t>(m) * shard_size)
                   : nullptr;
  ReadChunkPieces(
      source, chunk, chunk_size, carry ? buf->data() : nullptr, buf, qos::ServiceClass::kScrub,
      [this, chunk, k, m, n, shard_size, chunk_size, op, buf, carry, source,
       targets = *targets, disk_id = disk.id, version0](const Status& s, uint64_t) {
        if (op->finished) {
          return;
        }
        if (!s.ok()) {
          ++tier_stats_.demote_failures;
          CompleteMigration(op, s);
          return;
        }
        ChunkLayout* layout = FindLayout(chunk);
        if (layout == nullptr || layout->tier != ChunkTier::kReplicated) {
          ++tier_stats_.demote_failures;
          CompleteMigration(op, Aborted("layout changed"));
          return;
        }
        if (carry) {
          std::vector<const uint8_t*> data(k);
          std::vector<uint8_t*> parity(m);
          for (int i = 0; i < k; ++i) {
            data[i] = buf->data() + static_cast<uint64_t>(i) * shard_size;
          }
          for (int j = 0; j < m; ++j) {
            parity[j] = buf->data() + chunk_size + static_cast<uint64_t>(j) * shard_size;
          }
          Codec(k, m)->Encode(data, parity, shard_size);
        }
        tier_stats_.ec_bytes_encoded += chunk_size;

        std::vector<EcShardRef> shards(n);
        const uint64_t alloc_view = layout->view + 1;
        for (int i = 0; i < n; ++i) {
          ChunkServer* target = servers_[targets[i]];
          ChunkId shard_id = next_chunk_id_++;
          Status alloc = target->AllocateChunk(shard_id, alloc_view, disk_id);
          if (!alloc.ok()) {
            ++tier_stats_.demote_failures;
            CompleteMigration(op, alloc);
            return;
          }
          op->allocated.emplace_back(targets[i], shard_id);
          ec_shards_[shard_id] = EcShardInfo{chunk, i};
          if (heat_ != nullptr) {
            heat_->SetAlias(shard_id, chunk);
          }
          shards[i] = EcShardRef{targets[i], target->node(), shard_id};
        }

        auto remaining = std::make_shared<int>(n);
        for (int i = 0; i < n; ++i) {
          const uint8_t* src = nullptr;
          if (carry) {
            src = i < k ? buf->data() + static_cast<uint64_t>(i) * shard_size
                        : buf->data() + chunk_size + static_cast<uint64_t>(i - k) * shard_size;
          }
          WriteChunkPieces(servers_[shards[i].server], shards[i].shard_chunk, shard_size, src,
                           buf, source->node(), qos::ServiceClass::kScrub,
                           [this, chunk, op, shards, remaining, version0, k, m,
                            shard_size](const Status& ws) {
                             if (op->finished) {
                               return;
                             }
                             if (!ws.ok()) {
                               ++tier_stats_.demote_failures;
                               CompleteMigration(op, ws);
                               return;
                             }
                             if (--*remaining > 0) {
                               return;
                             }
                             CommitDemote(chunk, shards, version0, k, m, shard_size, op);
                           });
        }
      });
}

void Master::CommitDemote(ChunkId chunk, std::vector<EcShardRef> shards, uint64_t frozen_version,
                          int k, int m, uint64_t shard_size, std::shared_ptr<MigrationOp> op) {
  if (op->finished) {
    return;
  }
  ChunkLayout* layout = FindLayout(chunk);
  // Atomic commit check: this whole function is one event, so nothing can
  // interleave between the verification and the layout swap. Any write that
  // landed during the copy (version moved), is still in the server pipeline
  // (in-flight counter), or left journal records aborts the demotion — the
  // shard images would be torn.
  bool dirty = layout == nullptr || layout->tier != ChunkTier::kReplicated;
  if (!dirty && heat_ != nullptr && heat_->InflightWrites(chunk) > 0) {
    dirty = true;
  }
  if (!dirty) {
    for (const ReplicaRef& r : layout->replicas) {
      ChunkServer* server = servers_[r.server];
      if (server->crashed()) {
        continue;
      }
      Result<ChunkServer::ReplicaState> st = server->GetState(chunk);
      if ((st.ok() && st->version != frozen_version) || server->HasJournalBacklog(chunk)) {
        dirty = true;
        break;
      }
    }
  }
  if (dirty) {
    ++tier_stats_.demote_aborts;
    CompleteMigration(op, Aborted("chunk went hot during demotion"));
    return;
  }
  const uint64_t new_view = layout->view + 1;
  for (const ReplicaRef& r : layout->replicas) {
    if (!servers_[r.server]->crashed()) {
      servers_[r.server]->FreeChunk(chunk);
    }
  }
  layout->replicas.clear();
  layout->tier = ChunkTier::kEc;
  layout->ec_shards = std::move(shards);
  layout->ec_k = static_cast<uint16_t>(k);
  layout->ec_m = static_cast<uint16_t>(m);
  layout->ec_shard_size = shard_size;
  layout->ec_version = frozen_version;
  layout->view = new_view;
  ++recovery_stats_.view_changes;
  for (const EcShardRef& sh : layout->ec_shards) {
    servers_[sh.server]->SetView(sh.shard_chunk, new_view);
  }
  op->allocated.clear();  // committed: the abort path must not free them
  ++tier_stats_.demotions;
  NotifyTierChanged(chunk, true);
  CompleteMigration(op, OkStatus());
}

void Master::PromoteChunk(ChunkId chunk, bool write_triggered, std::function<void(Status)> done) {
  ChunkLayout* layout = FindLayout(chunk);
  if (layout == nullptr) {
    sim_->After(0, [done = std::move(done)]() { done(NotFound("unknown chunk")); });
    return;
  }
  if (layout->tier == ChunkTier::kReplicated && migrating_.count(chunk) == 0) {
    sim_->After(0, [done = std::move(done)]() { done(OkStatus()); });
    return;
  }
  if (migrating_.count(chunk) > 0) {
    // Queue behind the in-flight migration (demote, promote, or shard
    // repair); FinishMigration re-runs us, and the idempotent path above
    // completes immediately if someone else already promoted.
    promote_waiters_[chunk].push_back(std::move(done));
    return;
  }
  // First alive shard is the admission source (the stripe read fans out, but
  // one slot per migration keeps the controller's accounting simple).
  ChunkServer* admit_on = nullptr;
  for (const EcShardRef& sh : layout->ec_shards) {
    if (!servers_[sh.server]->crashed()) {
      admit_on = servers_[sh.server];
      break;
    }
  }
  if (admit_on == nullptr) {
    ++tier_stats_.promote_failures;
    sim_->After(0, [done = std::move(done)]() { done(Unavailable("no alive shard")); });
    return;
  }
  auto op = std::make_shared<MigrationOp>();
  op->chunk = chunk;
  op->done = std::move(done);
  migrating_.insert(chunk);
  op->timeout_event = sim_->After(migration_timeout_, [this, op]() {
    op->timeout_event = 0;
    ++tier_stats_.promote_failures;
    CompleteMigration(op, TimedOut("promotion timed out"));
  });
  if (admission_ != nullptr) {
    op->admission_source = admit_on->id();
    // A write is blocked on this promotion, so it competes at recovery
    // priority; policy promotions yield like scrub traffic.
    auto priority = write_triggered ? scrub::RecoveryAdmission::Priority::kRecovery
                                    : scrub::RecoveryAdmission::Priority::kScrub;
    admission_->Acquire(admit_on->id(), priority, [this, chunk, write_triggered, op]() {
      if (op->finished) {
        admission_->Release(op->admission_source);
        return;
      }
      op->granted = true;
      PromoteChunkNow(chunk, write_triggered, op);
    });
  } else {
    PromoteChunkNow(chunk, write_triggered, op);
  }
}

void Master::PromoteChunkNow(ChunkId chunk, bool write_triggered,
                             std::shared_ptr<MigrationOp> op) {
  if (op->finished) {
    return;
  }
  ChunkLayout* layout = FindLayout(chunk);
  if (layout == nullptr || layout->tier != ChunkTier::kEc) {
    CompleteMigration(op, layout == nullptr ? NotFound("unknown chunk") : OkStatus());
    return;
  }
  auto ref = chunk_refs_.find(chunk);
  const DiskMeta& disk = disks_[ref->second.disk];
  const int k = layout->ec_k;
  const int m = layout->ec_m;
  const int n = k + m;
  const uint64_t shard_size = layout->ec_shard_size;
  const uint64_t chunk_size = disk.chunk_size;
  const uint64_t frozen_version = layout->ec_version;
  const std::vector<EcShardRef> shards = layout->ec_shards;
  const qos::ServiceClass cls =
      write_triggered ? qos::ServiceClass::kRecovery : qos::ServiceClass::kScrub;

  // Any k alive shards suffice; data shards first minimizes reconstruction.
  std::vector<bool> alive(n);
  for (int i = 0; i < n; ++i) {
    alive[i] = !servers_[shards[i].server]->crashed();
  }
  ec::BackfillReadPlan rplan;
  Status plan_s = ec::PlanBackfillRead(alive, k, m, &rplan);
  if (!plan_s.ok()) {
    ++tier_stats_.promote_failures;
    CompleteMigration(op, plan_s);
    return;
  }
  const std::vector<int> sources = rplan.sources;
  const bool carry = recovery_carries_data_;
  auto buf = carry ? std::make_shared<std::vector<uint8_t>>(chunk_size +
                                                            static_cast<uint64_t>(m) * shard_size)
                   : nullptr;
  auto slot = [buf, chunk_size, shard_size, k](int i) -> uint8_t* {
    if (!buf) {
      return nullptr;
    }
    return i < k ? buf->data() + static_cast<uint64_t>(i) * shard_size
                 : buf->data() + chunk_size + static_cast<uint64_t>(i - k) * shard_size;
  };

  auto remaining = std::make_shared<int>(k);
  for (int idx : sources) {
    ReadChunkPieces(
        servers_[shards[idx].server], shards[idx].shard_chunk, shard_size, slot(idx), buf, cls,
        [this, chunk, write_triggered, op, buf, carry, slot, sources, shards, k, m, n,
         shard_size, chunk_size, frozen_version, cls, remaining, disk_id = disk.id,
         seq = ref->second.index, replication = disk.replication](const Status& s, uint64_t) {
          if (op->finished) {
            return;
          }
          if (!s.ok()) {
            ++tier_stats_.promote_failures;
            CompleteMigration(op, s);
            return;
          }
          if (--*remaining > 0) {
            return;
          }
          // All k source shards are in; rebuild any missing data shards.
          if (carry) {
            std::vector<bool> present(n, false);
            for (int i : sources) {
              present[i] = true;
            }
            std::vector<int> wanted;
            for (int d = 0; d < k; ++d) {
              if (!present[d]) {
                wanted.push_back(d);
              }
            }
            if (!wanted.empty()) {
              ec::ReedSolomon::DecodePlan plan;
              Status ps = Codec(k, m)->PlanReconstruct(present, wanted, &plan);
              if (!ps.ok()) {
                ++tier_stats_.promote_failures;
                CompleteMigration(op, ps);
                return;
              }
              std::vector<const uint8_t*> shard_ptrs(n, nullptr);
              for (int i : sources) {
                shard_ptrs[i] = slot(i);
              }
              std::vector<uint8_t*> outs(n, nullptr);
              for (int t : wanted) {
                outs[t] = slot(t);
              }
              Codec(k, m)->ReconstructWith(plan, shard_ptrs, outs, shard_size);
            }
          }
          // Place fresh replicas through the normal policy; top up around
          // crashed servers with replacements.
          ChunkLayout* layout = FindLayout(chunk);
          if (layout == nullptr || layout->tier != ChunkTier::kEc) {
            CompleteMigration(op, Aborted("layout changed"));
            return;
          }
          std::vector<ServerId> targets;
          std::vector<MachineId> used;
          auto try_add = [this, chunk, &targets, &used](ServerId sid) {
            ChunkServer* server = servers_[sid];
            if (server->crashed() || server->HasChunk(chunk)) {
              return;
            }
            targets.push_back(sid);
            used.push_back(placement_.MachineOf(sid));
          };
          Result<std::vector<ServerId>> placed =
              placement_.PlaceChunk(seq, replication, disk_id * 7919);
          if (placed.ok()) {
            for (ServerId sid : *placed) {
              try_add(sid);
            }
          }
          for (uint64_t salt = chunk;
               static_cast<int>(targets.size()) < replication && salt < chunk + 2 * num_servers();
               ++salt) {
            Result<ServerId> cand =
                placement_.PlaceReplacement(targets.empty(), used, salt);
            if (cand.ok()) {
              try_add(*cand);
            }
          }
          if (static_cast<int>(targets.size()) < replication) {
            ++tier_stats_.promote_failures;
            CompleteMigration(op, ResourceExhausted("too few servers to re-replicate"));
            return;
          }
          const uint64_t new_view = layout->view + 1;
          for (ServerId sid : targets) {
            Status alloc = servers_[sid]->AllocateChunk(chunk, new_view, disk_id);
            if (!alloc.ok()) {
              ++tier_stats_.promote_failures;
              CompleteMigration(op, alloc);
              return;
            }
            op->allocated.emplace_back(sid, chunk);
          }
          auto wremaining = std::make_shared<int>(static_cast<int>(targets.size()));
          for (ServerId sid : targets) {
            WriteChunkPieces(servers_[sid], chunk, chunk_size, carry ? buf->data() : nullptr,
                             buf, shards[sources[0]].node, cls,
                             [this, chunk, op, targets, write_triggered, wremaining,
                              frozen_version](const Status& ws) {
                               if (op->finished) {
                                 return;
                               }
                               if (!ws.ok()) {
                                 ++tier_stats_.promote_failures;
                                 CompleteMigration(op, ws);
                                 return;
                               }
                               if (--*wremaining > 0) {
                                 return;
                               }
                               CommitPromote(chunk, targets, frozen_version, write_triggered,
                                             op);
                             });
          }
        });
  }
}

void Master::CommitPromote(ChunkId chunk, std::vector<ServerId> targets,
                           uint64_t frozen_version, bool write_triggered,
                           std::shared_ptr<MigrationOp> op) {
  if (op->finished) {
    return;
  }
  ChunkLayout* layout = FindLayout(chunk);
  if (layout == nullptr || layout->tier != ChunkTier::kEc) {
    CompleteMigration(op, Aborted("layout changed"));
    return;
  }
  const uint64_t new_view = layout->view + 1;
  for (const EcShardRef& sh : layout->ec_shards) {
    ChunkServer* server = servers_[sh.server];
    if (!server->crashed() && server->HasChunk(sh.shard_chunk)) {
      server->FreeChunk(sh.shard_chunk);
    }
    // A crashed server keeps its stale shard image; it is unreachable and no
    // longer indexed, so it can never serve (or corrupt) future reads.
    ec_shards_.erase(sh.shard_chunk);
    if (heat_ != nullptr) {
      heat_->ClearAlias(sh.shard_chunk);
    }
  }
  layout->ec_shards.clear();
  layout->ec_k = 0;
  layout->ec_m = 0;
  layout->ec_shard_size = 0;
  layout->ec_version = 0;
  layout->tier = ChunkTier::kReplicated;
  layout->replicas.clear();
  for (ServerId sid : targets) {
    ChunkServer* server = servers_[sid];
    // The EC tier froze the replica version at demotion; restore it so the
    // promoted chunk resumes exactly where the replicated history left off.
    server->SetState(chunk, frozen_version, new_view);
    layout->replicas.push_back(
        ReplicaRef{sid, server->node(), server->on_ssd(), IsDemoted(sid)});
  }
  layout->view = new_view;
  SortLayout(layout);
  ++recovery_stats_.view_changes;
  op->allocated.clear();
  ++tier_stats_.promotions;
  if (write_triggered) {
    ++tier_stats_.write_promotions;
  }
  NotifyTierChanged(chunk, false);
  CompleteMigration(op, OkStatus());
}

void Master::RepairEcShard(ChunkId parent, int shard_index, std::function<void(Status)> done) {
  auto fail = [this, &done](Status s) {
    sim_->After(0, [s = std::move(s), done = std::move(done)]() mutable { done(std::move(s)); });
  };
  ChunkLayout* layout = FindLayout(parent);
  if (layout == nullptr) {
    fail(NotFound("unknown chunk"));
    return;
  }
  if (layout->tier != ChunkTier::kEc) {
    fail(OkStatus());  // promoted away in the meantime; nothing to repair
    return;
  }
  if (shard_index < 0 || shard_index >= static_cast<int>(layout->ec_shards.size())) {
    fail(InvalidArgument("bad shard index"));
    return;
  }
  if (migrating_.count(parent) > 0) {
    fail(Unavailable("migration in flight"));
    return;
  }
  ChunkServer* admit_on = nullptr;
  for (int i = 0; i < static_cast<int>(layout->ec_shards.size()); ++i) {
    if (i != shard_index && !servers_[layout->ec_shards[i].server]->crashed()) {
      admit_on = servers_[layout->ec_shards[i].server];
      break;
    }
  }
  if (admit_on == nullptr) {
    fail(Unavailable("fewer than k shards alive"));
    return;
  }
  auto op = std::make_shared<MigrationOp>();
  op->chunk = parent;
  op->done = std::move(done);
  migrating_.insert(parent);
  op->timeout_event = sim_->After(migration_timeout_, [this, op]() {
    op->timeout_event = 0;
    CompleteMigration(op, TimedOut("shard repair timed out"));
  });
  if (admission_ != nullptr) {
    op->admission_source = admit_on->id();
    admission_->Acquire(admit_on->id(), scrub::RecoveryAdmission::Priority::kRecovery,
                        [this, parent, shard_index, op]() {
                          if (op->finished) {
                            admission_->Release(op->admission_source);
                            return;
                          }
                          op->granted = true;
                          RepairEcShardNow(parent, shard_index, op);
                        });
  } else {
    RepairEcShardNow(parent, shard_index, op);
  }
}

void Master::RepairEcShardNow(ChunkId parent, int shard_index,
                              std::shared_ptr<MigrationOp> op) {
  if (op->finished) {
    return;
  }
  ChunkLayout* layout = FindLayout(parent);
  if (layout == nullptr || layout->tier != ChunkTier::kEc) {
    CompleteMigration(op, Aborted("layout changed"));
    return;
  }
  auto ref = chunk_refs_.find(parent);
  const int k = layout->ec_k;
  const int m = layout->ec_m;
  const int n = k + m;
  const uint64_t shard_size = layout->ec_shard_size;
  const std::vector<EcShardRef> shards = layout->ec_shards;
  const ChunkId shard_id = shards[shard_index].shard_chunk;
  const ServerId old_server = shards[shard_index].server;

  std::vector<int> sources;
  for (int i = 0; i < n && static_cast<int>(sources.size()) < k; ++i) {
    if (i != shard_index && !servers_[shards[i].server]->crashed()) {
      sources.push_back(i);
    }
  }
  if (static_cast<int>(sources.size()) < k) {
    CompleteMigration(op, Unavailable("fewer than k shards alive"));
    return;
  }
  // Replacement: no machine hosting a surviving shard, falling back to any
  // alive server that doesn't already hold a piece of this stripe.
  std::vector<MachineId> exclude;
  for (int i = 0; i < n; ++i) {
    if (i != shard_index && !servers_[shards[i].server]->crashed()) {
      exclude.push_back(placement_.MachineOf(shards[i].server));
    }
  }
  auto hosts_stripe = [&shards](ChunkServer* server) {
    for (const EcShardRef& sh : shards) {
      if (server->HasChunk(sh.shard_chunk)) {
        return true;
      }
    }
    return false;
  };
  ChunkServer* replacement = nullptr;
  const std::vector<MachineId> no_exclusions;
  for (int relax = 0; relax < 2 && replacement == nullptr; ++relax) {
    const std::vector<MachineId>& excl = relax == 0 ? exclude : no_exclusions;
    for (uint64_t salt = parent; salt < parent + num_servers(); ++salt) {
      Result<ServerId> cand = placement_.PlaceReplacement(false, excl, salt);
      if (!cand.ok()) {
        continue;
      }
      ChunkServer* server = servers_[*cand];
      if (*cand != old_server && !server->crashed() && !hosts_stripe(server)) {
        replacement = server;
        break;
      }
    }
  }
  if (replacement == nullptr) {
    CompleteMigration(op, ResourceExhausted("no replacement server for shard"));
    return;
  }
  const bool carry = recovery_carries_data_;
  auto buf =
      carry ? std::make_shared<std::vector<uint8_t>>(static_cast<uint64_t>(n) * shard_size)
            : nullptr;
  auto slot = [buf, shard_size](int i) -> uint8_t* {
    return buf ? buf->data() + static_cast<uint64_t>(i) * shard_size : nullptr;
  };
  auto remaining = std::make_shared<int>(k);
  for (int idx : sources) {
    ReadChunkPieces(
        servers_[shards[idx].server], shards[idx].shard_chunk, shard_size, slot(idx), buf,
        qos::ServiceClass::kRecovery,
        [this, parent, shard_index, shard_id, op, buf, carry, slot, sources, shards, k, m, n,
         shard_size, replacement, remaining,
         disk_id = ref->second.disk](const Status& s, uint64_t) {
          if (op->finished) {
            return;
          }
          if (!s.ok()) {
            CompleteMigration(op, s);
            return;
          }
          if (--*remaining > 0) {
            return;
          }
          if (carry) {
            std::vector<bool> present(n, false);
            for (int i : sources) {
              present[i] = true;
            }
            ec::ReedSolomon::DecodePlan plan;
            Status ps = Codec(k, m)->PlanReconstruct(present, {shard_index}, &plan);
            if (!ps.ok()) {
              CompleteMigration(op, ps);
              return;
            }
            std::vector<const uint8_t*> shard_ptrs(n, nullptr);
            for (int i : sources) {
              shard_ptrs[i] = slot(i);
            }
            std::vector<uint8_t*> outs(n, nullptr);
            outs[shard_index] = slot(shard_index);
            Codec(k, m)->ReconstructWith(plan, shard_ptrs, outs, shard_size);
          }
          ChunkLayout* layout = FindLayout(parent);
          if (layout == nullptr || layout->tier != ChunkTier::kEc) {
            CompleteMigration(op, Aborted("layout changed"));
            return;
          }
          const uint64_t new_view = layout->view + 1;
          Status alloc = replacement->AllocateChunk(shard_id, new_view, disk_id);
          if (!alloc.ok()) {
            CompleteMigration(op, alloc);
            return;
          }
          op->allocated.emplace_back(replacement->id(), shard_id);
          WriteChunkPieces(
              replacement, shard_id, shard_size, slot(shard_index), buf,
              servers_[shards[sources[0]].server]->node(), qos::ServiceClass::kRecovery,
              [this, parent, shard_index, shard_id, op, replacement](const Status& ws) {
                if (op->finished) {
                  return;
                }
                if (!ws.ok()) {
                  CompleteMigration(op, ws);
                  return;
                }
                ChunkLayout* layout = FindLayout(parent);
                if (layout == nullptr || layout->tier != ChunkTier::kEc) {
                  CompleteMigration(op, Aborted("layout changed"));
                  return;
                }
                EcShardRef& sh = layout->ec_shards[shard_index];
                ChunkServer* old = servers_[sh.server];
                if (old != replacement && !old->crashed() && old->HasChunk(shard_id)) {
                  old->FreeChunk(shard_id);
                }
                sh = EcShardRef{replacement->id(), replacement->node(), shard_id};
                const uint64_t new_view = layout->view + 1;
                layout->view = new_view;
                ++recovery_stats_.view_changes;
                for (const EcShardRef& other : layout->ec_shards) {
                  if (!servers_[other.server]->crashed()) {
                    servers_[other.server]->SetView(other.shard_chunk, new_view);
                  }
                }
                op->allocated.clear();
                ++tier_stats_.shard_repairs;
                ++recovery_stats_.chunks_recovered;
                CompleteMigration(op, OkStatus());
              });
        });
  }
}

void Master::RepairEcShardRange(ChunkId shard, uint64_t offset, uint64_t length,
                                std::function<void(Status)> done) {
  auto fail = [this, &done](Status s) {
    sim_->After(0, [s = std::move(s), done = std::move(done)]() mutable { done(std::move(s)); });
  };
  auto it = ec_shards_.find(shard);
  if (it == ec_shards_.end()) {
    fail(NotFound("not an EC shard"));
    return;
  }
  ChunkLayout* layout = FindLayout(it->second.parent);
  if (layout == nullptr || layout->tier != ChunkTier::kEc) {
    fail(NotFound("stale shard"));
    return;
  }
  const int target = it->second.index;
  const int k = layout->ec_k;
  const int m = layout->ec_m;
  const int n = k + m;
  const std::vector<EcShardRef> shards = layout->ec_shards;
  ChunkServer* damaged = servers_[shards[target].server];
  if (damaged->crashed()) {
    fail(Unavailable("shard server down"));
    return;
  }
  std::vector<int> sources;
  for (int i = 0; i < n && static_cast<int>(sources.size()) < k; ++i) {
    if (i != target && !servers_[shards[i].server]->crashed()) {
      sources.push_back(i);
    }
  }
  if (static_cast<int>(sources.size()) < k) {
    fail(Unavailable("fewer than k shards alive"));
    return;
  }
  auto op = std::make_shared<MigrationOp>();
  op->chunk = 0;  // range repairs don't hold the parent's migration lock
  op->done = std::move(done);
  op->timeout_event = sim_->After(migration_timeout_, [this, op]() {
    op->timeout_event = 0;
    CompleteMigration(op, TimedOut("shard range repair timed out"));
  });
  auto run = [this, shard, offset, length, target, k, m, n, sources, shards, damaged, op]() {
    const bool carry = recovery_carries_data_;
    // RS reconstruction is positional: byte b of the lost shard needs byte b
    // of k others, so only [offset, offset+length) of each source is read.
    auto buf = carry
                   ? std::make_shared<std::vector<uint8_t>>(static_cast<uint64_t>(n) * length)
                   : nullptr;
    auto slot = [buf, length](int i) -> uint8_t* {
      return buf ? buf->data() + static_cast<uint64_t>(i) * length : nullptr;
    };
    auto remaining = std::make_shared<int>(k);
    for (int idx : sources) {
      servers_[shards[idx].server]->HandleRecoveryRead(
          shards[idx].shard_chunk, offset, length, slot(idx),
          [this, shard, offset, length, target, k, m, n, sources, shards, damaged, op, buf,
           carry, slot, remaining](const Status& s, uint64_t) {
            if (op->finished) {
              return;
            }
            if (!s.ok()) {
              CompleteMigration(op, s);
              return;
            }
            if (--*remaining > 0) {
              return;
            }
            if (carry) {
              std::vector<bool> present(n, false);
              for (int i : sources) {
                present[i] = true;
              }
              ec::ReedSolomon::DecodePlan plan;
              Status ps = Codec(k, m)->PlanReconstruct(present, {target}, &plan);
              if (!ps.ok()) {
                CompleteMigration(op, ps);
                return;
              }
              std::vector<const uint8_t*> shard_ptrs(n, nullptr);
              for (int i : sources) {
                shard_ptrs[i] = slot(i);
              }
              std::vector<uint8_t*> outs(n, nullptr);
              outs[target] = slot(target);
              Codec(k, m)->ReconstructWith(plan, shard_ptrs, outs, length);
            }
            uint64_t wire = net::WireBytes(net::MessageType::kRecoveryData, length);
            transport_->Send(
                shards[sources[0]].node, damaged->node(), wire,
                [this, shard, offset, length, target, damaged, op, buf, slot]() {
                  damaged->HandleRecoveryWrite(
                      shard, offset, length, slot(target),
                      [this, length, op, buf](const Status& ws) {
                        if (op->finished) {
                          return;
                        }
                        if (ws.ok()) {
                          recovery_stats_.bytes_transferred += length;
                          ++tier_stats_.shard_range_repairs;
                        }
                        CompleteMigration(op, ws);
                      },
                      qos::ServiceClass::kScrub);
                });
          },
          qos::ServiceClass::kScrub);
    }
  };
  if (admission_ != nullptr) {
    op->admission_source = servers_[shards[sources[0]].server]->id();
    admission_->Acquire(op->admission_source, scrub::RecoveryAdmission::Priority::kScrub,
                        [this, op, run]() {
                          if (op->finished) {
                            admission_->Release(op->admission_source);
                            return;
                          }
                          op->granted = true;
                          run();
                        });
  } else {
    run();
  }
}

std::vector<Master::TierChunkInfo> Master::ListTierChunks() const {
  std::vector<TierChunkInfo> out;
  out.reserve(chunk_refs_.size());
  for (const auto& [disk_id, meta] : disks_) {
    for (const ChunkLayout& layout : meta.chunks) {
      out.push_back(TierChunkInfo{layout.chunk, layout.tier == ChunkTier::kEc});
    }
  }
  return out;
}

uint64_t Master::PhysicalBytes() const {
  uint64_t total = 0;
  for (const auto& [disk_id, meta] : disks_) {
    for (const ChunkLayout& layout : meta.chunks) {
      if (layout.tier == ChunkTier::kEc) {
        total += layout.ec_shards.size() * layout.ec_shard_size;
      } else {
        total += layout.replicas.size() * meta.chunk_size;
      }
    }
  }
  return total;
}

uint64_t Master::LogicalBytes() const {
  uint64_t total = 0;
  for (const auto& [disk_id, meta] : disks_) {
    total += meta.chunks.size() * meta.chunk_size;
  }
  return total;
}

}  // namespace ursa::cluster
