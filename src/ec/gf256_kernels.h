// Vectorized GF(2^8) multiply-accumulate kernels — the EC data plane.
//
// Reed-Solomon coding spends essentially all of its CPU in one primitive:
//
//     out[i] ^= coef * in[i]        (GF(256) multiply, XOR accumulate)
//
// The scalar reference (Gf256::MulAccum) pays a log/exp double lookup and a
// zero-test branch per byte. ISA-L-class coders instead use the split-table
// PSHUFB technique: for a fixed coefficient c, precompute two 16-entry tables
//     lo[x] = c * x          (products of the low nibble)
//     hi[x] = c * (x << 4)   (products of the high nibble)
// and then, since GF addition is XOR and multiplication distributes,
//     c * v = lo[v & 15] ^ hi[v >> 4]
// — which a byte-shuffle instruction evaluates for 16 (SSSE3) or 32 (AVX2)
// lanes at once. This header exposes that kernel family with one-time
// runtime dispatch mirroring src/common/crc32.cc:
//
//   * kAvx2     — 32 bytes/iteration via vpshufb (x86-64 with AVX2),
//   * kSsse3    — 16 bytes/iteration via pshufb,
//   * kPortable — slicing-by-8: one 64-bit load, eight lookups into a
//                 256-entry product table, one 64-bit XOR store (the CRC32C
//                 slice8 pattern applied to GF multiply; branch-free),
//   * kScalar   — the Gf256 log/exp reference (always available; the
//                 bit-exactness baseline for tests and benchmarks).
//
// All kernels handle arbitrary lengths and alignments (unaligned loads plus
// a scalar tail) and produce bit-identical results. The fused multi-
// destination variant updates all m parity rows in one pass over a data
// shard, so the shard streams from memory once and stays hot in L1/L2
// instead of being re-read per parity row.
//
// URSA_FORCE_PORTABLE_KERNELS (see src/common/cpu.h) makes the dispatcher
// pick kPortable and report the SIMD tiers unavailable.
#ifndef URSA_EC_GF256_KERNELS_H_
#define URSA_EC_GF256_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace ursa::ec {

enum class GfKernelTier {
  kScalar,    // Gf256 log/exp reference
  kPortable,  // 64-bit slicing through a 256-entry product table
  kSsse3,     // pshufb split-nibble tables, 16 B/iter
  kAvx2,      // vpshufb split-nibble tables, 32 B/iter
};

// Whether `tier` can run on this machine (kScalar/kPortable: always; SIMD
// tiers: CPU support AND not forced portable).
bool GfKernelTierAvailable(GfKernelTier tier);

// The tier GfMulAccum/GfMulAccumMulti dispatch to (latched at first use).
GfKernelTier GfKernelBestTier();

// "scalar", "portable", "ssse3", or "avx2".
const char* GfKernelTierName(GfKernelTier tier);

// Per-coefficient lookup tables, built once and cached by the codec (288
// bytes). `lo`/`hi` feed the PSHUFB tiers, `full` feeds the portable tier;
// the scalar tier ignores the table and uses Gf256 directly.
struct GfMulTable {
  alignas(16) uint8_t lo[16];  // c * x for x in [0, 16)
  alignas(16) uint8_t hi[16];  // c * (x << 4) for x in [0, 16)
  uint8_t full[256];           // c * v for v in [0, 256)
};

void GfBuildMulTable(uint8_t coef, GfMulTable* table);

// out[i] ^= coef * in[i] for i in [0, len), best tier. `table` must have been
// built for `coef`.
void GfMulAccum(const GfMulTable& table, uint8_t coef, const uint8_t* in, uint8_t* out,
                size_t len);

// Same, pinned to a specific tier (tests and benchmarks). `tier` must be
// available.
void GfMulAccumWith(GfKernelTier tier, const GfMulTable& table, uint8_t coef,
                    const uint8_t* in, uint8_t* out, size_t len);

// Fused multi-destination multiply-accumulate:
//     outs[j][i] ^= coefs[j] * in[i]   for j in [0, m), i in [0, len)
// One pass over `in` updates every destination — each input block is loaded
// once and reused across all m coefficient rows. `tables[j]` must have been
// built for `coefs[j]`. Destinations must not alias the input or each other.
void GfMulAccumMulti(const GfMulTable* tables, const uint8_t* coefs, const uint8_t* in,
                     uint8_t* const* outs, int m, size_t len);

void GfMulAccumMultiWith(GfKernelTier tier, const GfMulTable* tables, const uint8_t* coefs,
                         const uint8_t* in, uint8_t* const* outs, int m, size_t len);

// out[i] ^= in[i]: the coefficient-1 special case (pure XOR), vectorized.
// Used for delta application on the parity RMW path.
void GfXorAccum(const uint8_t* in, uint8_t* out, size_t len);

}  // namespace ursa::ec

#endif  // URSA_EC_GF256_KERNELS_H_
