// Erasure-coded stripe store: the §7 alternative to n-way replication.
//
// A logical byte space is striped row-by-row across k data shard devices
// (stripe unit U per shard per row), with m Reed-Solomon parity shards.
// Three write paths, mirroring the designs §7 surveys:
//
//   * full-stripe writes (aligned, k*U bytes): encode once, write k+m shards
//     — the only cheap case, and why Sheepdog "emulates partial write by
//     reading unmodified data, re-encoding, and writing a full write";
//   * partial writes, read-modify-write: read old data, write new data, and
//     for each parity read-update-write using the delta (2 + 2m shard I/Os,
//     two dependent rounds);
//   * partial writes, parity logging (Chan et al. / parity-logging-with-
//     reserved-space): read old data, write new data, APPEND the parity
//     delta to each parity shard's log (sequential), apply lazily at
//     Flush() — trading read cost at the parity for apply work later;
//   * partial writes, PariX-style speculation: overwrites of recently
//     written ranges skip the old-data read entirely (see PartialWriteMode).
//
// Degraded reads reconstruct from any k surviving shards; RepairShard
// rebuilds a lost shard onto a fresh device. This is real, byte-accurate
// code (tests verify round trips through failures); bench_ec_comparison
// measures it against replication to reproduce the paper's §7 conclusion.
#ifndef URSA_EC_EC_STRIPE_STORE_H_
#define URSA_EC_EC_STRIPE_STORE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/common/units.h"
#include "src/ec/reed_solomon.h"
#include "src/sim/simulator.h"
#include "src/storage/block_device.h"

namespace ursa::ec {

enum class PartialWriteMode {
  kReadModifyWrite,  // Sheepdog-class RMW: read old data+parity, write both
  kParityLogging,    // Chan et al.: read old data, append parity deltas
  // PariX (the Ursa authors' prior system, §7): speculative partial writes.
  // The coordinator caches the current value of every range written since
  // the last flush; OVERWRITES therefore need NO old-data read at all — the
  // delta comes from the cache and parities get one sequential log append
  // each. Only the FIRST write of a range pays the read. Log entries are
  // scaled deltas, so chained overwrites compose under XOR.
  kParixSpeculative,
};

struct EcStripeConfig {
  int k = 4;
  int m = 2;
  uint64_t stripe_unit = 64 * kKiB;  // bytes per shard per row
  PartialWriteMode mode = PartialWriteMode::kReadModifyWrite;
  // Parity-log region size reserved at the top of each parity device.
  uint64_t parity_log_bytes = 64 * kMiB;
};

struct EcStats {
  uint64_t full_stripe_writes = 0;
  uint64_t partial_writes = 0;
  uint64_t speculative_hits = 0;  // PariX overwrites that skipped the read
  uint64_t shard_reads = 0;
  uint64_t shard_writes = 0;
  uint64_t parity_log_appends = 0;
  uint64_t parity_log_applied = 0;
  // Same-range deltas merged (XOR-composed) before Flush touched the parity
  // devices — each one is a saved read-modify-write round trip.
  uint64_t parity_log_coalesced = 0;
  uint64_t degraded_reads = 0;
  // Repairs that went through the admission hooks (see AdmissionHooks).
  uint64_t repair_admissions = 0;
  // Scratch-pool accounting: `scratch_fresh` counts pool misses (heap
  // allocations); in steady state acquires keep rising while fresh stays
  // flat — encode/decode runs allocation-free off recycled buffers.
  uint64_t scratch_acquires = 0;
  uint64_t scratch_fresh = 0;
};

// Optional gate on background rebuild traffic. Kept generic (plain
// callables, opaque source key) so ursa::ec stays free of higher-layer
// dependencies; the cluster wires these to scrub::RecoveryAdmission.
struct AdmissionHooks {
  // Requests a transfer slot for `source`; `grant` fires — possibly later —
  // once a slot is free.
  std::function<void(uint64_t source, std::function<void()> grant)> acquire;
  // Returns the slot. Called exactly once per granted acquire.
  std::function<void(uint64_t source)> release;
};

class EcStripeStore {
 public:
  // `devices` are the k data devices followed by the m parity devices; each
  // must hold `rows * stripe_unit` bytes of shard data (parity devices also
  // reserve config.parity_log_bytes above that).
  EcStripeStore(sim::Simulator* sim, std::vector<storage::BlockDevice*> devices,
                uint64_t rows, const EcStripeConfig& config);

  uint64_t logical_size() const { return rows_ * config_.stripe_unit * config_.k; }

  // Async logical I/O (512-aligned). Writes spanning rows are split.
  void Write(uint64_t offset, uint64_t length, const void* data, storage::IoCallback done);
  void Read(uint64_t offset, uint64_t length, void* out, storage::IoCallback done);

  // Marks shard i failed (reads route around it; writes to it are dropped —
  // the stripe runs degraded until repaired).
  void FailShard(int shard);
  // Rebuilds shard i from the survivors onto `replacement` and swaps it in.
  // When admission hooks are installed, the rebuild waits for a transfer
  // slot first (rebuild reads fan out across every surviving shard; the
  // stripe must not flood devices also serving foreground I/O).
  void RepairShard(int shard, storage::BlockDevice* replacement, storage::IoCallback done);

  // Installs the background-traffic gate used by RepairShard.
  void SetAdmissionHooks(AdmissionHooks hooks) { admission_ = std::move(hooks); }

  // Applies all pending parity-log deltas to the parity shards.
  void Flush(storage::IoCallback done);

  const EcStats& stats() const { return stats_; }
  int alive_shards() const;

 private:
  struct LogEntry {
    int parity;       // which parity shard
    uint64_t offset;  // shard-relative byte offset of the delta
    std::shared_ptr<std::vector<uint8_t>> delta;
  };

  struct Extent {
    uint64_t row;
    int shard;            // data shard index
    uint64_t shard_off;   // byte offset within the shard (row*U + in-unit)
    uint64_t len;
    uint64_t user_off;    // offset within the caller's buffer
  };

  std::vector<Extent> SplitLogical(uint64_t offset, uint64_t length) const;

  // RepairShard past the admission gate (releases the slot when done).
  void RepairShardNow(int shard, storage::BlockDevice* replacement, storage::IoCallback done);

  void PartialWriteExtent(const Extent& ext, const uint8_t* data, storage::IoCallback done);
  void DegradedReadExtent(const Extent& ext, uint8_t* out, storage::IoCallback done);

  // Pooled scratch: recycles shard-sized buffers across async operations so
  // steady-state encode/decode allocates nothing (see EcStats scratch_*).
  // Buffers return to the pool when their last shared_ptr drops.
  class BufferPool;
  std::shared_ptr<std::vector<uint8_t>> AcquireBuf(size_t len, bool zero);

  // Cached reconstruction plan for degraded reads of `shard` under the
  // current liveness pattern; compiled on first use per (alive set, shard).
  const ReedSolomon::DecodePlan* PlanForDegraded(int shard, const std::vector<int>& sources);

  void ShardRead(int shard, uint64_t offset, uint64_t len, void* out, storage::IoCallback done);
  void ShardWrite(int shard, uint64_t offset, uint64_t len, const void* data,
                  storage::IoCallback done);

  sim::Simulator* sim_;
  std::vector<storage::BlockDevice*> devices_;
  std::vector<bool> alive_;
  uint64_t rows_;
  EcStripeConfig config_;
  ReedSolomon rs_;
  AdmissionHooks admission_;
  std::deque<LogEntry> parity_log_;
  uint64_t parity_log_used_ = 0;
  // PariX speculation cache: (shard, shard_off) -> current bytes of ranges
  // written since the last flush (empty vector in timing-only runs).
  std::map<std::pair<int, uint64_t>, std::vector<uint8_t>> parix_cache_;
  std::shared_ptr<BufferPool> pool_;
  std::map<std::pair<std::vector<bool>, int>, ReedSolomon::DecodePlan> plan_cache_;
  // Reused synchronously within one Encode call (never across callbacks).
  std::vector<const uint8_t*> enc_data_ptrs_;
  std::vector<uint8_t*> enc_parity_ptrs_;
  EcStats stats_;
};

}  // namespace ursa::ec

#endif  // URSA_EC_EC_STRIPE_STORE_H_
