#include "src/ec/reed_solomon.h"

#include <cstring>

#include "src/common/logging.h"

namespace ursa::ec {

ReedSolomon::ReedSolomon(int k, int m) : k_(k), m_(m) {
  URSA_CHECK_GE(k, 1);
  URSA_CHECK_GE(m, 0);
  URSA_CHECK_LE(k + m, 255);
  const Gf256& gf = Gf256::Instance();

  // Cauchy matrix: coding[p][d] = 1 / (x_p + y_d) with disjoint x/y sets —
  // every square submatrix is invertible, which is exactly the MDS property.
  rows_.assign(k + m, std::vector<uint8_t>(k, 0));
  for (int d = 0; d < k; ++d) {
    rows_[d][d] = 1;
  }
  coding_.assign(m, std::vector<uint8_t>(k, 0));
  for (int p = 0; p < m; ++p) {
    for (int d = 0; d < k; ++d) {
      uint8_t x = static_cast<uint8_t>(k + p);  // x_p in [k, k+m)
      uint8_t y = static_cast<uint8_t>(d);      // y_d in [0, k)
      coding_[p][d] = gf.Inv(Gf256::Add(x, y));
      rows_[k + p][d] = coding_[p][d];
    }
  }
}

void ReedSolomon::Encode(const std::vector<const uint8_t*>& data,
                         const std::vector<uint8_t*>& parity, size_t len) const {
  URSA_CHECK_EQ(data.size(), static_cast<size_t>(k_));
  URSA_CHECK_EQ(parity.size(), static_cast<size_t>(m_));
  const Gf256& gf = Gf256::Instance();
  for (int p = 0; p < m_; ++p) {
    std::memset(parity[p], 0, len);
    for (int d = 0; d < k_; ++d) {
      gf.MulAccum(coding_[p][d], data[d], parity[p], len);
    }
  }
}

bool ReedSolomon::Invert(std::vector<std::vector<uint8_t>>* matrix) {
  const Gf256& gf = Gf256::Instance();
  size_t n = matrix->size();
  // Augment with the identity.
  for (size_t r = 0; r < n; ++r) {
    (*matrix)[r].resize(2 * n, 0);
    (*matrix)[r][n + r] = 1;
  }
  for (size_t col = 0; col < n; ++col) {
    // Pivot.
    size_t pivot = col;
    while (pivot < n && (*matrix)[pivot][col] == 0) {
      ++pivot;
    }
    if (pivot == n) {
      return false;
    }
    std::swap((*matrix)[pivot], (*matrix)[col]);
    uint8_t inv = gf.Inv((*matrix)[col][col]);
    for (size_t c = 0; c < 2 * n; ++c) {
      (*matrix)[col][c] = gf.Mul((*matrix)[col][c], inv);
    }
    for (size_t r = 0; r < n; ++r) {
      if (r == col || (*matrix)[r][col] == 0) {
        continue;
      }
      uint8_t factor = (*matrix)[r][col];
      for (size_t c = 0; c < 2 * n; ++c) {
        (*matrix)[r][c] = Gf256::Add((*matrix)[r][c], gf.Mul(factor, (*matrix)[col][c]));
      }
    }
  }
  // Keep only the right half (the inverse).
  for (size_t r = 0; r < n; ++r) {
    (*matrix)[r].erase((*matrix)[r].begin(), (*matrix)[r].begin() + n);
  }
  return true;
}

Status ReedSolomon::Reconstruct(const std::vector<const uint8_t*>& shards,
                                std::vector<uint8_t*> out, size_t len) const {
  URSA_CHECK_EQ(shards.size(), static_cast<size_t>(n()));
  const Gf256& gf = Gf256::Instance();

  // Collect k surviving shards and the encoding rows that produced them.
  std::vector<int> alive;
  for (int i = 0; i < n() && static_cast<int>(alive.size()) < k_; ++i) {
    if (shards[i] != nullptr) {
      alive.push_back(i);
    }
  }
  if (static_cast<int>(alive.size()) < k_) {
    return Unavailable("fewer than k shards survive; stripe unrecoverable");
  }

  std::vector<std::vector<uint8_t>> sub(k_);
  for (int r = 0; r < k_; ++r) {
    sub[r] = rows_[alive[r]];
  }
  if (!Invert(&sub)) {
    return Internal("singular decoding matrix (should be impossible for Cauchy)");
  }

  // data[d] = sum_r inverse[d][r] * survivor[r]; rebuild only missing data.
  std::vector<std::vector<uint8_t>> data_bufs;
  std::vector<const uint8_t*> data(k_);
  for (int d = 0; d < k_; ++d) {
    if (shards[d] != nullptr) {
      data[d] = shards[d];
      continue;
    }
    URSA_CHECK(out[d] != nullptr) << "missing shard needs an output buffer";
    std::memset(out[d], 0, len);
    for (int r = 0; r < k_; ++r) {
      gf.MulAccum(sub[d][r], shards[alive[r]], out[d], len);
    }
    data[d] = out[d];
  }
  // Re-encode any missing parity from the (now complete) data.
  for (int p = 0; p < m_; ++p) {
    int idx = k_ + p;
    if (shards[idx] != nullptr) {
      continue;
    }
    URSA_CHECK(out[idx] != nullptr);
    std::memset(out[idx], 0, len);
    for (int d = 0; d < k_; ++d) {
      gf.MulAccum(coding_[p][d], data[d], out[idx], len);
    }
  }
  return OkStatus();
}

}  // namespace ursa::ec
