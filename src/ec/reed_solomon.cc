#include "src/ec/reed_solomon.h"

#include <algorithm>
#include <cstring>

#include "src/common/logging.h"

namespace ursa::ec {

ReedSolomon::ReedSolomon(int k, int m) : k_(k), m_(m) {
  URSA_CHECK_GE(k, 1);
  URSA_CHECK_GE(m, 0);
  URSA_CHECK_LE(k + m, 255);
  const Gf256& gf = Gf256::Instance();

  // Cauchy matrix: coding[p][d] = 1 / (x_p + y_d) with disjoint x/y sets —
  // every square submatrix is invertible, which is exactly the MDS property.
  rows_.assign(k + m, std::vector<uint8_t>(k, 0));
  for (int d = 0; d < k; ++d) {
    rows_[d][d] = 1;
  }
  coding_.assign(m, std::vector<uint8_t>(k, 0));
  enc_tables_.resize(static_cast<size_t>(k) * m);
  enc_coefs_.resize(static_cast<size_t>(k) * m);
  for (int p = 0; p < m; ++p) {
    for (int d = 0; d < k; ++d) {
      uint8_t x = static_cast<uint8_t>(k + p);  // x_p in [k, k+m)
      uint8_t y = static_cast<uint8_t>(d);      // y_d in [0, k)
      coding_[p][d] = gf.Inv(Gf256::Add(x, y));
      rows_[k + p][d] = coding_[p][d];
      enc_coefs_[static_cast<size_t>(d) * m + p] = coding_[p][d];
      GfBuildMulTable(coding_[p][d], &enc_tables_[static_cast<size_t>(d) * m + p]);
    }
  }
}

void ReedSolomon::Encode(const std::vector<const uint8_t*>& data,
                         const std::vector<uint8_t*>& parity, size_t len) const {
  EncodeWith(GfKernelBestTier(), data, parity, len);
}

void ReedSolomon::EncodeWith(GfKernelTier tier, const std::vector<const uint8_t*>& data,
                             const std::vector<uint8_t*>& parity, size_t len) const {
  URSA_CHECK_EQ(data.size(), static_cast<size_t>(k_));
  URSA_CHECK_EQ(parity.size(), static_cast<size_t>(m_));
  for (int p = 0; p < m_; ++p) {
    std::memset(parity[p], 0, len);
  }
  if (m_ == 0) {
    return;
  }
  // Fused: stream each data shard once, updating all m parity rows while the
  // shard's cache lines are hot — instead of m full passes over every shard.
  for (int d = 0; d < k_; ++d) {
    GfMulAccumMultiWith(tier, &enc_tables_[static_cast<size_t>(d) * m_],
                        &enc_coefs_[static_cast<size_t>(d) * m_], data[d], parity.data(), m_,
                        len);
  }
}

bool ReedSolomon::Invert(std::vector<std::vector<uint8_t>>* matrix) {
  const Gf256& gf = Gf256::Instance();
  size_t n = matrix->size();
  // Augment with the identity.
  for (size_t r = 0; r < n; ++r) {
    (*matrix)[r].resize(2 * n, 0);
    (*matrix)[r][n + r] = 1;
  }
  for (size_t col = 0; col < n; ++col) {
    // Pivot.
    size_t pivot = col;
    while (pivot < n && (*matrix)[pivot][col] == 0) {
      ++pivot;
    }
    if (pivot == n) {
      return false;
    }
    std::swap((*matrix)[pivot], (*matrix)[col]);
    uint8_t inv = gf.Inv((*matrix)[col][col]);
    for (size_t c = 0; c < 2 * n; ++c) {
      (*matrix)[col][c] = gf.Mul((*matrix)[col][c], inv);
    }
    for (size_t r = 0; r < n; ++r) {
      if (r == col || (*matrix)[r][col] == 0) {
        continue;
      }
      uint8_t factor = (*matrix)[r][col];
      for (size_t c = 0; c < 2 * n; ++c) {
        (*matrix)[r][c] = Gf256::Add((*matrix)[r][c], gf.Mul(factor, (*matrix)[col][c]));
      }
    }
  }
  // Keep only the right half (the inverse).
  for (size_t r = 0; r < n; ++r) {
    (*matrix)[r].erase((*matrix)[r].begin(), (*matrix)[r].begin() + n);
  }
  return true;
}

Status ReedSolomon::PlanReconstruct(const std::vector<bool>& present,
                                    const std::vector<int>& wanted, DecodePlan* plan) const {
  URSA_CHECK_EQ(present.size(), static_cast<size_t>(n()));
  const Gf256& gf = Gf256::Instance();

  plan->sources.clear();
  plan->targets.clear();
  for (int i = 0; i < n() && static_cast<int>(plan->sources.size()) < k_; ++i) {
    if (present[i]) {
      plan->sources.push_back(i);
    }
  }
  if (static_cast<int>(plan->sources.size()) < k_) {
    return Unavailable("fewer than k shards survive; stripe unrecoverable");
  }
  for (int t : wanted) {
    URSA_CHECK_LT(static_cast<size_t>(t), static_cast<size_t>(n()));
    if (!present[t]) {
      plan->targets.push_back(t);
    }
  }
  size_t nt = plan->targets.size();
  plan->coefs.assign(static_cast<size_t>(k_) * nt, 0);
  plan->tables.resize(static_cast<size_t>(k_) * nt);
  if (nt == 0) {
    return OkStatus();
  }

  // Invert the k x k matrix of the survivors' encoding rows: inv[d][r] is
  // the coefficient of survivor r in data shard d.
  std::vector<std::vector<uint8_t>> inv(k_);
  for (int r = 0; r < k_; ++r) {
    inv[r] = rows_[plan->sources[r]];
  }
  if (!Invert(&inv)) {
    return Internal("singular decoding matrix (should be impossible for Cauchy)");
  }

  // Every lost shard is a direct linear combination of the survivors: a lost
  // data shard d uses inv[d]; a lost parity p folds its coding row through
  // the inverse (parity_p = coding_p . data = (coding_p . inv) . survivors).
  for (size_t t = 0; t < nt; ++t) {
    int shard = plan->targets[t];
    for (int r = 0; r < k_; ++r) {
      uint8_t c;
      if (shard < k_) {
        c = inv[shard][r];
      } else {
        c = 0;
        for (int d = 0; d < k_; ++d) {
          c = Gf256::Add(c, gf.Mul(coding_[shard - k_][d], inv[d][r]));
        }
      }
      plan->coefs[static_cast<size_t>(r) * nt + t] = c;
      GfBuildMulTable(c, &plan->tables[static_cast<size_t>(r) * nt + t]);
    }
  }
  return OkStatus();
}

void ReedSolomon::ReconstructWith(const DecodePlan& plan,
                                  const std::vector<const uint8_t*>& shards,
                                  const std::vector<uint8_t*>& out, size_t len,
                                  GfKernelTier tier) const {
  size_t nt = plan.targets.size();
  if (nt == 0) {
    return;
  }
  // Collect the rebuild destinations once, then stream each survivor through
  // the fused kernel — one pass per survivor updates every target.
  std::vector<uint8_t*> outs(nt);
  for (size_t t = 0; t < nt; ++t) {
    outs[t] = out[plan.targets[t]];
    URSA_CHECK(outs[t] != nullptr) << "missing shard needs an output buffer";
    std::memset(outs[t], 0, len);
  }
  for (int r = 0; r < k_; ++r) {
    const uint8_t* src = shards[plan.sources[r]];
    URSA_CHECK(src != nullptr);
    GfMulAccumMultiWith(tier, &plan.tables[static_cast<size_t>(r) * nt],
                        &plan.coefs[static_cast<size_t>(r) * nt], src, outs.data(),
                        static_cast<int>(nt), len);
  }
}

Status ReedSolomon::Reconstruct(const std::vector<const uint8_t*>& shards,
                                std::vector<uint8_t*> out, size_t len) const {
  URSA_CHECK_EQ(shards.size(), static_cast<size_t>(n()));
  std::vector<bool> present(n());
  std::vector<int> wanted;
  for (int i = 0; i < n(); ++i) {
    present[i] = shards[i] != nullptr;
    if (!present[i]) {
      wanted.push_back(i);
    }
  }
  DecodePlan plan;
  Status s = PlanReconstruct(present, wanted, &plan);
  if (!s.ok()) {
    return s;
  }
  ReconstructWith(plan, shards, out, len);
  return OkStatus();
}

Status PlanBackfillRead(const std::vector<bool>& alive, int k, int m, BackfillReadPlan* plan) {
  URSA_CHECK_EQ(alive.size(), static_cast<size_t>(k + m));
  plan->sources.clear();
  plan->missing_data.clear();
  // Data shards first: every alive data shard read is a byte range of the
  // final image for free; parity shards only fill in for dead data shards.
  for (int i = 0; i < k + m && static_cast<int>(plan->sources.size()) < k; ++i) {
    if (alive[i]) {
      plan->sources.push_back(i);
    }
  }
  if (static_cast<int>(plan->sources.size()) < k) {
    return Unavailable("fewer than k shards alive; image unrecoverable");
  }
  for (int d = 0; d < k; ++d) {
    if (!alive[d]) {
      plan->missing_data.push_back(d);
    }
  }
  return OkStatus();
}

}  // namespace ursa::ec
