// Systematic Reed-Solomon (k data + m parity) over GF(2^8).
//
// Encoding matrix: the k x k identity stacked on an m x k Cauchy-derived
// matrix, so any k of the k+m shards reconstruct the stripe. Supports
// incremental parity updates (parity_delta = coef * data_delta), which is
// what makes partial-write strategies — RMW, parity logging (Chan et al.),
// PariX-style speculation — implementable without full-stripe rewrites.
#ifndef URSA_EC_REED_SOLOMON_H_
#define URSA_EC_REED_SOLOMON_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/ec/gf256.h"

namespace ursa::ec {

class ReedSolomon {
 public:
  // Requires 1 <= k, 0 <= m, k + m <= 255.
  ReedSolomon(int k, int m);

  int k() const { return k_; }
  int m() const { return m_; }
  int n() const { return k_ + m_; }

  // Computes the m parity shards from the k data shards (all `len` bytes).
  void Encode(const std::vector<const uint8_t*>& data, const std::vector<uint8_t*>& parity,
              size_t len) const;

  // Coefficient of data shard `d` in parity shard `p` — the scalar for
  // incremental parity updates: new_parity = old_parity + coef*(new - old).
  uint8_t ParityCoefficient(int p, int d) const { return coding_[p][d]; }

  // Applies a data delta (new XOR old) of shard `d` to parity shard `p`.
  void UpdateParity(int p, int d, const uint8_t* delta, uint8_t* parity, size_t len) const {
    Gf256::Instance().MulAccum(coding_[p][d], delta, parity, len);
  }

  // Reconstructs the full stripe from any k surviving shards.
  // `shards[i]` is shard i's bytes or nullptr if lost; lost shards must point
  // at writable buffers in `out[i]`. Fails when fewer than k survive.
  Status Reconstruct(const std::vector<const uint8_t*>& shards, std::vector<uint8_t*> out,
                     size_t len) const;

 private:
  // Inverts a square GF(256) matrix in place; false if singular.
  static bool Invert(std::vector<std::vector<uint8_t>>* matrix);

  int k_;
  int m_;
  // Full (k+m) x k encoding matrix rows; first k rows = identity.
  std::vector<std::vector<uint8_t>> rows_;
  // Convenience view of the parity rows (m x k).
  std::vector<std::vector<uint8_t>> coding_;
};

}  // namespace ursa::ec

#endif  // URSA_EC_REED_SOLOMON_H_
