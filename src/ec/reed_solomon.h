// Systematic Reed-Solomon (k data + m parity) over GF(2^8).
//
// Encoding matrix: the k x k identity stacked on an m x k Cauchy-derived
// matrix, so any k of the k+m shards reconstruct the stripe. Supports
// incremental parity updates (parity_delta = coef * data_delta), which is
// what makes partial-write strategies — RMW, parity logging (Chan et al.),
// PariX-style speculation — implementable without full-stripe rewrites.
//
// The hot loops run on the vectorized GF(256) kernels (gf256_kernels.h).
// The codec caches a split-nibble multiply table per (parity, data)
// coefficient at construction, and Encode is FUSED: each data shard is
// streamed once, updating all m parity rows while the shard is hot in cache,
// instead of re-reading it per parity row. Reconstruction compiles a
// DecodePlan — per-survivor coefficient rows (missing parity folded through
// the inverse, so every lost shard, data or parity, is a direct linear
// combination of the k survivors) plus their multiply tables — which callers
// can cache across calls with the same liveness pattern.
#ifndef URSA_EC_REED_SOLOMON_H_
#define URSA_EC_REED_SOLOMON_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/ec/gf256.h"
#include "src/ec/gf256_kernels.h"

namespace ursa::ec {

class ReedSolomon {
 public:
  // Requires 1 <= k, 0 <= m, k + m <= 255.
  ReedSolomon(int k, int m);

  int k() const { return k_; }
  int m() const { return m_; }
  int n() const { return k_ + m_; }

  // Computes the m parity shards from the k data shards (all `len` bytes),
  // one fused pass per data shard on the best available kernel tier.
  void Encode(const std::vector<const uint8_t*>& data, const std::vector<uint8_t*>& parity,
              size_t len) const;

  // Encode pinned to a kernel tier (tests assert bit-exactness across tiers,
  // benchmarks report per-tier throughput). `tier` must be available.
  void EncodeWith(GfKernelTier tier, const std::vector<const uint8_t*>& data,
                  const std::vector<uint8_t*>& parity, size_t len) const;

  // Coefficient of data shard `d` in parity shard `p` — the scalar for
  // incremental parity updates: new_parity = old_parity + coef*(new - old).
  uint8_t ParityCoefficient(int p, int d) const { return coding_[p][d]; }

  // Applies a data delta (new XOR old) of shard `d` to parity shard `p`,
  // using the cached coefficient table.
  void UpdateParity(int p, int d, const uint8_t* delta, uint8_t* parity, size_t len) const {
    GfMulAccum(enc_tables_[static_cast<size_t>(d) * m_ + p], coding_[p][d], delta, parity,
               len);
  }

  // A compiled reconstruction: which k survivors to read, which shards to
  // rebuild, and the per-(survivor, target) coefficient tables. Building one
  // costs a k x k matrix inversion plus table generation; callers that
  // reconstruct repeatedly under a stable failure pattern (degraded reads,
  // shard repair) should cache it.
  struct DecodePlan {
    std::vector<int> sources;  // k surviving shard indices, ascending
    std::vector<int> targets;  // shard indices this plan rebuilds
    // Row-major [source][target]: contribution of sources[r] to targets[t].
    std::vector<uint8_t> coefs;
    std::vector<GfMulTable> tables;
  };

  // Compiles a plan from `present` (shard availability, size n) rebuilding
  // every shard in `wanted` (indices into [0, n)). Wanted shards that are
  // present are ignored. Fails when fewer than k shards are present.
  Status PlanReconstruct(const std::vector<bool>& present, const std::vector<int>& wanted,
                         DecodePlan* plan) const;

  // Executes a plan: out[t] (for each t in plan.targets) is overwritten with
  // the reconstructed shard. `shards[s]` must be valid for every s in
  // plan.sources. Fused: each survivor is streamed once, updating every
  // rebuild target.
  void ReconstructWith(const DecodePlan& plan, const std::vector<const uint8_t*>& shards,
                       const std::vector<uint8_t*>& out, size_t len,
                       GfKernelTier tier) const;
  void ReconstructWith(const DecodePlan& plan, const std::vector<const uint8_t*>& shards,
                       const std::vector<uint8_t*>& out, size_t len) const {
    ReconstructWith(plan, shards, out, len, GfKernelBestTier());
  }

  // Reconstructs the full stripe from any k surviving shards.
  // `shards[i]` is shard i's bytes or nullptr if lost; lost shards must point
  // at writable buffers in `out[i]`. Fails when fewer than k survive.
  // (Compiles a throwaway DecodePlan; hot paths cache one instead.)
  Status Reconstruct(const std::vector<const uint8_t*>& shards, std::vector<uint8_t*> out,
                     size_t len) const;

 private:
  // Inverts a square GF(256) matrix in place; false if singular.
  static bool Invert(std::vector<std::vector<uint8_t>>* matrix);

  int k_;
  int m_;
  // Full (k+m) x k encoding matrix rows; first k rows = identity.
  std::vector<std::vector<uint8_t>> rows_;
  // Convenience view of the parity rows (m x k).
  std::vector<std::vector<uint8_t>> coding_;
  // Cached multiply tables, grouped for the fused encode: entry d*m + p is
  // the table for coding_[p][d], and enc_coefs_ mirrors the layout.
  std::vector<GfMulTable> enc_tables_;
  std::vector<uint8_t> enc_coefs_;
};

// Read plan for rebuilding the full data image of a stripe (promotion
// back-fill, PariX-style speculation): which k shards to read — data shards
// first, so in the no-failure case the image needs no decode at all — and
// which data shards must then be reconstructed from those sources.
struct BackfillReadPlan {
  std::vector<int> sources;       // k shard indices to read, data-first
  std::vector<int> missing_data;  // data shards to rebuild from the sources
};

// Compiles a BackfillReadPlan from `alive` (shard availability, size k+m).
// Fails when fewer than k shards are alive.
Status PlanBackfillRead(const std::vector<bool>& alive, int k, int m, BackfillReadPlan* plan);

}  // namespace ursa::ec

#endif  // URSA_EC_REED_SOLOMON_H_
