// GF(2^8) arithmetic for Reed-Solomon coding.
//
// The paper's §7 weighs erasure coding (Sheepdog's full-write emulation,
// parity logging, their own PariX) against replication and chooses
// replication because HDD capacity is the cheapest resource in the hybrid
// design. This module and reed_solomon.h implement the EC substrate so that
// trade-off can be measured rather than asserted (bench_ec_comparison).
//
// Field: polynomial 0x11D (x^8 + x^4 + x^3 + x^2 + 1), generator 2 —
// the conventional choice in storage systems.
#ifndef URSA_EC_GF256_H_
#define URSA_EC_GF256_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace ursa::ec {

class Gf256 {
 public:
  // Table singleton; construction fills log/exp tables.
  static const Gf256& Instance();

  uint8_t Mul(uint8_t a, uint8_t b) const {
    if (a == 0 || b == 0) {
      return 0;
    }
    return exp_[log_[a] + log_[b]];
  }

  uint8_t Div(uint8_t a, uint8_t b) const;

  uint8_t Inv(uint8_t a) const;

  // a ^ n (field exponentiation of the generator-based element).
  uint8_t Pow(uint8_t a, unsigned n) const;

  static uint8_t Add(uint8_t a, uint8_t b) { return a ^ b; }  // = Sub

  // out[i] ^= coef * in[i] for i in [0, len): the inner loop of encoding,
  // delta updates, and decoding.
  void MulAccum(uint8_t coef, const uint8_t* in, uint8_t* out, size_t len) const;

 private:
  Gf256();

  std::array<uint8_t, 512> exp_;  // doubled so Mul skips the mod-255
  std::array<int, 256> log_;
};

}  // namespace ursa::ec

#endif  // URSA_EC_GF256_H_
