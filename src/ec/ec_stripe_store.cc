#include "src/ec/ec_stripe_store.h"

#include <cstring>
#include <tuple>
#include <utility>

#include "src/common/logging.h"
#include "src/ec/gf256_kernels.h"

namespace ursa::ec {

namespace {

struct Joiner {
  size_t remaining;
  Status status;
  storage::IoCallback done;

  void Finish(const Status& s) {
    if (!s.ok() && status.ok()) {
      status = s;
    }
    if (--remaining == 0) {
      done(status);
    }
  }
};

std::shared_ptr<Joiner> MakeJoiner(size_t n, storage::IoCallback done) {
  auto j = std::make_shared<Joiner>();
  j->remaining = n;
  j->done = std::move(done);
  return j;
}

}  // namespace

// Freelist of recycled byte buffers. Held by shared_ptr so buffer deleters
// can outlive the store without dangling.
class EcStripeStore::BufferPool {
 public:
  std::vector<std::unique_ptr<std::vector<uint8_t>>> free_list;
};

std::shared_ptr<std::vector<uint8_t>> EcStripeStore::AcquireBuf(size_t len, bool zero) {
  ++stats_.scratch_acquires;
  std::unique_ptr<std::vector<uint8_t>> vec;
  if (!pool_->free_list.empty()) {
    vec = std::move(pool_->free_list.back());
    pool_->free_list.pop_back();
  } else {
    ++stats_.scratch_fresh;
    vec = std::make_unique<std::vector<uint8_t>>();
  }
  if (zero) {
    vec->assign(len, 0);
  } else {
    vec->resize(len);
  }
  std::shared_ptr<BufferPool> pool = pool_;
  return std::shared_ptr<std::vector<uint8_t>>(
      vec.release(), [pool](std::vector<uint8_t>* v) {
        pool->free_list.emplace_back(v);
      });
}

EcStripeStore::EcStripeStore(sim::Simulator* sim, std::vector<storage::BlockDevice*> devices,
                             uint64_t rows, const EcStripeConfig& config)
    : sim_(sim),
      devices_(std::move(devices)),
      rows_(rows),
      config_(config),
      rs_(config.k, config.m),
      pool_(std::make_shared<BufferPool>()) {
  URSA_CHECK_EQ(devices_.size(), static_cast<size_t>(config.k + config.m));
  alive_.assign(devices_.size(), true);
  uint64_t shard_bytes = rows_ * config_.stripe_unit;
  for (int i = 0; i < config_.k; ++i) {
    URSA_CHECK_GE(devices_[i]->capacity(), shard_bytes);
  }
  for (int p = 0; p < config_.m; ++p) {
    URSA_CHECK_GE(devices_[config_.k + p]->capacity(),
                  shard_bytes + config_.parity_log_bytes);
  }
}

int EcStripeStore::alive_shards() const {
  int n = 0;
  for (bool a : alive_) {
    n += a ? 1 : 0;
  }
  return n;
}

void EcStripeStore::FailShard(int shard) {
  URSA_CHECK_LT(static_cast<size_t>(shard), alive_.size());
  alive_[shard] = false;
}

std::vector<EcStripeStore::Extent> EcStripeStore::SplitLogical(uint64_t offset,
                                                               uint64_t length) const {
  URSA_CHECK_EQ(offset % 512, 0u);
  URSA_CHECK_EQ(length % 512, 0u);
  URSA_CHECK_LE(offset + length, logical_size());
  uint64_t u = config_.stripe_unit;
  uint64_t row_bytes = u * config_.k;
  std::vector<Extent> out;
  uint64_t pos = offset;
  while (pos < offset + length) {
    uint64_t row = pos / row_bytes;
    uint64_t within = pos % row_bytes;
    int shard = static_cast<int>(within / u);
    uint64_t in_unit = within % u;
    uint64_t run = std::min(u - in_unit, offset + length - pos);
    out.push_back(Extent{row, shard, row * u + in_unit, run, pos - offset});
    pos += run;
  }
  return out;
}

void EcStripeStore::ShardRead(int shard, uint64_t offset, uint64_t len, void* out,
                              storage::IoCallback done) {
  ++stats_.shard_reads;
  storage::IoRequest req;
  req.type = storage::IoType::kRead;
  req.offset = offset;
  req.length = len;
  req.out = out;
  req.done = std::move(done);
  devices_[shard]->Submit(std::move(req));
}

void EcStripeStore::ShardWrite(int shard, uint64_t offset, uint64_t len, const void* data,
                               storage::IoCallback done) {
  ++stats_.shard_writes;
  storage::IoRequest req;
  req.type = storage::IoType::kWrite;
  req.offset = offset;
  req.length = len;
  req.data = data;
  req.done = std::move(done);
  devices_[shard]->Submit(std::move(req));
}

void EcStripeStore::Write(uint64_t offset, uint64_t length, const void* data,
                          storage::IoCallback done) {
  uint64_t u = config_.stripe_unit;
  uint64_t row_bytes = u * config_.k;
  const auto* src = static_cast<const uint8_t*>(data);

  // Separate full rows (cheap path) from partial extents.
  struct FullRow {
    uint64_t row;
    uint64_t user_off;
  };
  std::vector<FullRow> full_rows;
  std::vector<Extent> partials;
  uint64_t pos = offset;
  while (pos < offset + length) {
    if (pos % row_bytes == 0 && offset + length - pos >= row_bytes) {
      full_rows.push_back(FullRow{pos / row_bytes, pos - offset});
      pos += row_bytes;
    } else {
      uint64_t run = std::min(row_bytes - pos % row_bytes, offset + length - pos);
      for (const Extent& e : SplitLogical(pos, run)) {
        Extent adjusted = e;
        adjusted.user_off += pos - offset;
        partials.push_back(adjusted);
      }
      pos += run;
    }
  }

  auto joiner = MakeJoiner(full_rows.size() + partials.size(), std::move(done));

  for (const FullRow& fr : full_rows) {
    ++stats_.full_stripe_writes;
    // A full-stripe write re-materializes the parity absolutely: pending
    // parity-log deltas for this row are now stale and must be discarded.
    uint64_t row_lo = fr.row * u;
    uint64_t row_hi = row_lo + u;
    for (auto it = parity_log_.begin(); it != parity_log_.end();) {
      uint64_t e_len = it->delta ? it->delta->size() : 512;
      if (it->offset < row_hi && row_lo < it->offset + e_len) {
        it = parity_log_.erase(it);
      } else {
        ++it;
      }
    }
    // PariX speculation-cache entries for this row are stale too.
    for (auto it = parix_cache_.begin(); it != parix_cache_.end();) {
      if (it->first.second >= row_lo && it->first.second < row_hi) {
        it = parix_cache_.erase(it);
      } else {
        ++it;
      }
    }
    // Encode parity once (one pooled buffer holds all m parity units, one
    // fused kernel pass per data shard), write all k+m shards in parallel.
    std::shared_ptr<std::vector<uint8_t>> parity;
    if (src != nullptr) {
      parity = AcquireBuf(static_cast<uint64_t>(config_.m) * u, false);
      enc_data_ptrs_.resize(config_.k);
      enc_parity_ptrs_.resize(config_.m);
      for (int d = 0; d < config_.k; ++d) {
        enc_data_ptrs_[d] = src + fr.user_off + static_cast<uint64_t>(d) * u;
      }
      for (int p = 0; p < config_.m; ++p) {
        enc_parity_ptrs_[p] = parity->data() + static_cast<uint64_t>(p) * u;
      }
      rs_.Encode(enc_data_ptrs_, enc_parity_ptrs_, u);
    }
    uint64_t shard_off = fr.row * u;
    auto row_join = MakeJoiner(devices_.size(), [joiner](const Status& s) { joiner->Finish(s); });
    for (int d = 0; d < config_.k; ++d) {
      const void* bytes = src == nullptr ? nullptr : src + fr.user_off + uint64_t(d) * u;
      if (!alive_[d]) {
        sim_->After(0, [row_join]() { row_join->Finish(OkStatus()); });  // degraded: skip
        continue;
      }
      ShardWrite(d, shard_off, u, bytes,
                 [row_join, parity](const Status& s) { row_join->Finish(s); });
    }
    for (int p = 0; p < config_.m; ++p) {
      int idx = config_.k + p;
      const void* bytes = parity ? parity->data() + static_cast<uint64_t>(p) * u : nullptr;
      if (!alive_[idx]) {
        sim_->After(0, [row_join]() { row_join->Finish(OkStatus()); });
        continue;
      }
      ShardWrite(idx, shard_off, u, bytes,
                 [row_join, parity](const Status& s) { row_join->Finish(s); });
    }
  }

  // Partial extents run SEQUENTIALLY: extents of a multi-shard write can
  // target overlapping parity ranges, and concurrent read-xor-write parity
  // updates would lose deltas.
  if (!partials.empty()) {
    auto idx = std::make_shared<size_t>(0);
    auto exts = std::make_shared<std::vector<Extent>>(std::move(partials));
    auto pump = std::make_shared<std::function<void()>>();
    *pump = [this, idx, exts, src, joiner, pump]() {
      if (*idx >= exts->size()) {
        return;
      }
      const Extent& ext = (*exts)[(*idx)++];
      const uint8_t* bytes = src == nullptr ? nullptr : src + ext.user_off;
      PartialWriteExtent(ext, bytes, [joiner, pump](const Status& s) {
        joiner->Finish(s);
        (*pump)();
      });
    };
    (*pump)();
  }
}

void EcStripeStore::PartialWriteExtent(const Extent& ext, const uint8_t* data,
                                       storage::IoCallback done) {
  ++stats_.partial_writes;
  if (!alive_[ext.shard]) {
    done(Unavailable("degraded partial writes to a failed shard are unsupported"));
    return;
  }
  // PariX fast path: an overwrite of a range written since the last flush
  // computes its delta from the speculation cache — no device read.
  if (config_.mode == PartialWriteMode::kParixSpeculative) {
    auto key = std::make_pair(ext.shard, ext.shard_off);
    auto it = parix_cache_.find(key);
    bool hit = it != parix_cache_.end() &&
               (data == nullptr ? it->second.empty() : it->second.size() == ext.len);
    if (hit) {
      ++stats_.speculative_hits;
      std::shared_ptr<std::vector<uint8_t>> delta;
      if (data != nullptr) {
        delta = AcquireBuf(ext.len, false);
        std::memcpy(delta->data(), data, ext.len);
        GfXorAccum(it->second.data(), delta->data(), ext.len);
        it->second.assign(data, data + ext.len);
      }
      int alive_parities = 0;
      for (int p = 0; p < config_.m; ++p) {
        alive_parities += alive_[config_.k + p] ? 1 : 0;
      }
      auto joiner = MakeJoiner(1 + alive_parities, std::move(done));
      ShardWrite(ext.shard, ext.shard_off, ext.len, data,
                 [joiner](const Status& s2) { joiner->Finish(s2); });
      for (int p = 0; p < config_.m; ++p) {
        int idx = config_.k + p;
        if (!alive_[idx]) {
          continue;
        }
        std::shared_ptr<std::vector<uint8_t>> scaled;
        if (delta) {
          scaled = AcquireBuf(ext.len, true);
          rs_.UpdateParity(p, ext.shard, delta->data(), scaled->data(), ext.len);
        }
        uint64_t log_base = rows_ * config_.stripe_unit;
        uint64_t cursor = parity_log_used_ % (config_.parity_log_bytes - ext.len + 1);
        parity_log_.push_back(LogEntry{p, ext.shard_off, scaled});
        parity_log_used_ += ext.len;
        ++stats_.parity_log_appends;
        ++stats_.shard_writes;
        storage::IoRequest log_req;
        log_req.type = storage::IoType::kWrite;
        log_req.offset = log_base + cursor;
        log_req.length = ext.len;
        log_req.data = scaled ? scaled->data() : nullptr;
        log_req.done = [joiner](const Status& s2) { joiner->Finish(s2); };
        devices_[idx]->Submit(std::move(log_req));
      }
      return;
    }
  }
  // 1. Read the old data (needed for the parity delta in every scheme).
  auto old_data = data == nullptr ? nullptr : AcquireBuf(ext.len, false);
  ShardRead(
      ext.shard, ext.shard_off, ext.len, old_data ? old_data->data() : nullptr,
      [this, ext, data, old_data, done = std::move(done)](const Status& s) mutable {
        if (!s.ok()) {
          done(s);
          return;
        }
        // 2. Compute the raw delta and write the new data.
        std::shared_ptr<std::vector<uint8_t>> delta;
        if (data != nullptr) {
          delta = AcquireBuf(ext.len, false);
          std::memcpy(delta->data(), data, ext.len);
          GfXorAccum(old_data->data(), delta->data(), ext.len);
        }
        if (config_.mode == PartialWriteMode::kParixSpeculative) {
          // Remember the new value so the next overwrite skips the read.
          auto& cached = parix_cache_[std::make_pair(ext.shard, ext.shard_off)];
          if (data != nullptr) {
            cached.assign(data, data + ext.len);
          } else {
            cached.clear();
          }
        }
        int alive_parities = 0;
        for (int p = 0; p < config_.m; ++p) {
          alive_parities += alive_[config_.k + p] ? 1 : 0;
        }
        auto joiner = MakeJoiner(1 + alive_parities, std::move(done));
        ShardWrite(ext.shard, ext.shard_off, ext.len, data,
                   [joiner](const Status& s2) { joiner->Finish(s2); });

        // 3. Update each alive parity.
        for (int p = 0; p < config_.m; ++p) {
          int idx = config_.k + p;
          if (!alive_[idx]) {
            continue;
          }
          // Per-parity scaled delta: coef(p, shard) * raw delta.
          std::shared_ptr<std::vector<uint8_t>> scaled;
          if (delta) {
            scaled = AcquireBuf(ext.len, true);
            rs_.UpdateParity(p, ext.shard, delta->data(), scaled->data(), ext.len);
          }
          if (config_.mode != PartialWriteMode::kReadModifyWrite) {
            // Append to the parity's log region (sequential) and buffer the
            // delta for lazy application at Flush().
            uint64_t log_base = rows_ * config_.stripe_unit;
            uint64_t cursor = parity_log_used_ % (config_.parity_log_bytes - ext.len + 1);
            parity_log_.push_back(LogEntry{p, ext.shard_off, scaled});
            parity_log_used_ += ext.len;
            ++stats_.parity_log_appends;
            ++stats_.shard_writes;
            storage::IoRequest log_req;
            log_req.type = storage::IoType::kWrite;
            log_req.offset = log_base + cursor;
            log_req.length = ext.len;
            log_req.data = scaled ? scaled->data() : nullptr;
            log_req.done = [joiner](const Status& s2) { joiner->Finish(s2); };
            devices_[idx]->Submit(std::move(log_req));
          } else {
            // RMW: read old parity, xor in the scaled delta, write back.
            auto parity_buf = scaled ? AcquireBuf(ext.len, false) : nullptr;
            ShardRead(idx, ext.shard_off, ext.len, parity_buf ? parity_buf->data() : nullptr,
                      [this, idx, ext, scaled, parity_buf, joiner](const Status& s2) {
                        if (!s2.ok()) {
                          joiner->Finish(s2);
                          return;
                        }
                        if (parity_buf) {
                          GfXorAccum(scaled->data(), parity_buf->data(), ext.len);
                        }
                        ShardWrite(idx, ext.shard_off, ext.len,
                                   parity_buf ? parity_buf->data() : nullptr,
                                   [joiner, parity_buf](const Status& s3) {
                                     joiner->Finish(s3);
                                   });
                      });
          }
        }
      });
}

void EcStripeStore::Read(uint64_t offset, uint64_t length, void* out, storage::IoCallback done) {
  std::vector<Extent> extents = SplitLogical(offset, length);
  auto joiner = MakeJoiner(extents.size(), std::move(done));
  auto* dst = static_cast<uint8_t*>(out);
  for (const Extent& ext : extents) {
    uint8_t* bytes = dst == nullptr ? nullptr : dst + ext.user_off;
    if (alive_[ext.shard]) {
      ShardRead(ext.shard, ext.shard_off, ext.len, bytes,
                [joiner](const Status& s) { joiner->Finish(s); });
    } else {
      DegradedReadExtent(ext, bytes, [joiner](const Status& s) { joiner->Finish(s); });
    }
  }
}

const ReedSolomon::DecodePlan* EcStripeStore::PlanForDegraded(
    int shard, const std::vector<int>& sources) {
  auto key = std::make_pair(alive_, shard);
  auto it = plan_cache_.find(key);
  if (it != plan_cache_.end()) {
    return &it->second;
  }
  std::vector<bool> present(devices_.size(), false);
  for (int src : sources) {
    present[src] = true;
  }
  ReedSolomon::DecodePlan plan;
  if (!rs_.PlanReconstruct(present, {shard}, &plan).ok()) {
    return nullptr;
  }
  return &plan_cache_.emplace(std::move(key), std::move(plan)).first->second;
}

void EcStripeStore::DegradedReadExtent(const Extent& ext, uint8_t* out,
                                       storage::IoCallback done) {
  ++stats_.degraded_reads;
  int n = rs_.n();
  // Read the same shard range from k surviving shards, then reconstruct.
  std::vector<int> sources;
  for (int i = 0; i < n && static_cast<int>(sources.size()) < config_.k; ++i) {
    if (alive_[i]) {
      sources.push_back(i);
    }
  }
  if (static_cast<int>(sources.size()) < config_.k) {
    done(Unavailable("fewer than k shards alive"));
    return;
  }
  struct State {
    std::vector<std::shared_ptr<std::vector<uint8_t>>> bufs;
  };
  auto state = std::make_shared<State>();
  state->bufs.resize(n);
  auto finish = [this, ext, out, state, n, sources,
                 done = std::move(done)](const Status& s) {
    if (!s.ok() || out == nullptr) {
      done(s);
      return;
    }
    // Apply pending parity-log deltas to the parity buffers we read.
    for (const LogEntry& entry : parity_log_) {
      int idx = config_.k + entry.parity;
      if (!state->bufs[idx] || !entry.delta) {
        continue;
      }
      uint64_t lo = std::max(entry.offset, ext.shard_off);
      uint64_t hi = std::min(entry.offset + entry.delta->size(), ext.shard_off + ext.len);
      for (uint64_t b = lo; b < hi; ++b) {
        (*state->bufs[idx])[b - ext.shard_off] ^= (*entry.delta)[b - entry.offset];
      }
    }
    // Rebuild ONLY the shard the caller asked for, straight into its output
    // buffer, with the plan cached for this (alive set, shard) pair.
    const ReedSolomon::DecodePlan* plan = PlanForDegraded(ext.shard, sources);
    if (plan == nullptr) {
      done(Unavailable("fewer than k shards alive"));
      return;
    }
    std::vector<const uint8_t*> shards(n, nullptr);
    for (int src : sources) {
      shards[src] = state->bufs[src]->data();
    }
    std::vector<uint8_t*> rebuild(n, nullptr);
    rebuild[ext.shard] = out;
    rs_.ReconstructWith(*plan, shards, rebuild, ext.len);
    done(OkStatus());
  };
  auto joiner = MakeJoiner(sources.size(), std::move(finish));
  for (int src : sources) {
    if (out != nullptr) {
      state->bufs[src] = AcquireBuf(ext.len, false);
    }
    ShardRead(src, ext.shard_off, ext.len,
              state->bufs[src] ? state->bufs[src]->data() : nullptr,
              [joiner](const Status& s) { joiner->Finish(s); });
  }
}

void EcStripeStore::Flush(storage::IoCallback done) {
  if (parity_log_.empty()) {
    sim_->After(0, [done = std::move(done)]() { done(OkStatus()); });
    return;
  }
  std::deque<LogEntry> raw;
  raw.swap(parity_log_);
  parix_cache_.clear();
  // Coalesce same-range deltas before touching the parity devices: chained
  // overwrites leave one log entry per write, but scaled deltas compose
  // under XOR, so one parity RMW per distinct range suffices.
  std::vector<LogEntry> entries;
  std::vector<bool> merged;  // entries[i].delta is a private merge buffer
  std::map<std::tuple<int, uint64_t, uint64_t>, size_t> by_range;
  for (LogEntry& e : raw) {
    uint64_t len = e.delta ? e.delta->size() : 0;
    auto key = std::make_tuple(e.parity, e.offset, len);
    auto it = by_range.find(key);
    if (it == by_range.end()) {
      by_range.emplace(key, entries.size());
      entries.push_back(std::move(e));
      merged.push_back(false);
      continue;
    }
    LogEntry& g = entries[it->second];
    if (e.delta != nullptr) {
      if (!merged[it->second]) {
        // First merge into this range: the group's delta may still be aliased
        // by an in-flight append, so compose into a private buffer.
        auto buf = AcquireBuf(len, false);
        std::memcpy(buf->data(), g.delta->data(), len);
        g.delta = std::move(buf);
        merged[it->second] = true;
      }
      GfXorAccum(e.delta->data(), g.delta->data(), len);
    }
    ++stats_.parity_log_coalesced;
  }
  auto joiner = MakeJoiner(entries.size(), std::move(done));
  for (const LogEntry& entry : entries) {
    int idx = config_.k + entry.parity;
    ++stats_.parity_log_applied;
    if (!alive_[idx]) {
      sim_->After(0, [joiner]() { joiner->Finish(OkStatus()); });
      continue;
    }
    uint64_t len = entry.delta ? entry.delta->size() : 512;
    auto parity_buf = entry.delta ? AcquireBuf(len, false) : nullptr;
    auto delta = entry.delta;
    uint64_t off = entry.offset;
    ShardRead(idx, off, len, parity_buf ? parity_buf->data() : nullptr,
              [this, idx, off, len, delta, parity_buf, joiner](const Status& s) {
                if (!s.ok()) {
                  joiner->Finish(s);
                  return;
                }
                if (parity_buf) {
                  GfXorAccum(delta->data(), parity_buf->data(), len);
                }
                ShardWrite(idx, off, len, parity_buf ? parity_buf->data() : nullptr,
                           [joiner, parity_buf](const Status& s2) { joiner->Finish(s2); });
              });
  }
}

void EcStripeStore::RepairShard(int shard, storage::BlockDevice* replacement,
                                storage::IoCallback done) {
  URSA_CHECK_LT(static_cast<size_t>(shard), devices_.size());
  URSA_CHECK(!alive_[shard]) << "repairing a live shard";
  if (admission_.acquire == nullptr) {
    RepairShardNow(shard, replacement, std::move(done));
    return;
  }
  // Rebuild reads fan out across every surviving shard: hold the whole
  // repair behind one transfer slot keyed by the rebuilt shard.
  ++stats_.repair_admissions;
  admission_.acquire(static_cast<uint64_t>(shard),
                     [this, shard, replacement, done = std::move(done)]() mutable {
                       auto release = admission_.release;
                       RepairShardNow(shard, replacement,
                                      [shard, release, done = std::move(done)](const Status& s) {
                                        if (release != nullptr) {
                                          release(static_cast<uint64_t>(shard));
                                        }
                                        done(s);
                                      });
                     });
}

void EcStripeStore::RepairShardNow(int shard, storage::BlockDevice* replacement,
                                   storage::IoCallback done) {
  // Pending parity deltas must be durable in the parity shards before they
  // serve as reconstruction sources.
  Flush([this, shard, replacement, done = std::move(done)](const Status& fs) mutable {
    if (!fs.ok()) {
      done(fs);
      return;
    }
    uint64_t u = config_.stripe_unit;
    auto row = std::make_shared<uint64_t>(0);
    auto step = std::make_shared<std::function<void()>>();
    auto done_shared = std::make_shared<storage::IoCallback>(std::move(done));
    *step = [this, shard, replacement, row, step, u, done_shared]() {
      if (*row >= rows_) {
        devices_[shard] = replacement;
        alive_[shard] = true;
        (*done_shared)(OkStatus());
        return;
      }
      uint64_t shard_off = *row * u;
      Extent ext{*row, shard, shard_off, u, 0};
      auto buf = AcquireBuf(u, false);
      DegradedReadExtent(ext, buf->data(),
                         [this, replacement, shard_off, u, buf, row, step,
                          done_shared](const Status& s) {
                           if (!s.ok()) {
                             (*done_shared)(s);
                             return;
                           }
                           storage::IoRequest req;
                           req.type = storage::IoType::kWrite;
                           req.offset = shard_off;
                           req.length = u;
                           req.data = buf->data();
                           req.done = [buf, row, step](const Status& s2) {
                             if (!s2.ok()) {
                               return;  // dropped; caller times out
                             }
                             ++*row;
                             (*step)();
                           };
                           replacement->Submit(std::move(req));
                         });
    };
    (*step)();
  });
}

}  // namespace ursa::ec
