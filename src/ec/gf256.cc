#include "src/ec/gf256.h"

#include "src/common/logging.h"

namespace ursa::ec {

const Gf256& Gf256::Instance() {
  static const Gf256 instance;
  return instance;
}

Gf256::Gf256() {
  uint16_t x = 1;
  for (int i = 0; i < 255; ++i) {
    exp_[i] = static_cast<uint8_t>(x);
    log_[x] = i;
    x <<= 1;
    if (x & 0x100) {
      x ^= 0x11D;
    }
  }
  for (int i = 255; i < 512; ++i) {
    exp_[i] = exp_[i - 255];
  }
  log_[0] = 0;  // never consulted: Mul/Div guard zero explicitly
}

uint8_t Gf256::Div(uint8_t a, uint8_t b) const {
  URSA_CHECK_NE(b, 0) << "division by zero in GF(256)";
  if (a == 0) {
    return 0;
  }
  return exp_[log_[a] + 255 - log_[b]];
}

uint8_t Gf256::Inv(uint8_t a) const {
  URSA_CHECK_NE(a, 0) << "zero has no inverse";
  return exp_[255 - log_[a]];
}

uint8_t Gf256::Pow(uint8_t a, unsigned n) const {
  if (n == 0) {
    return 1;
  }
  if (a == 0) {
    return 0;
  }
  return exp_[(static_cast<unsigned>(log_[a]) * n) % 255];
}

void Gf256::MulAccum(uint8_t coef, const uint8_t* in, uint8_t* out, size_t len) const {
  if (coef == 0) {
    return;
  }
  if (coef == 1) {
    for (size_t i = 0; i < len; ++i) {
      out[i] ^= in[i];
    }
    return;
  }
  int log_c = log_[coef];
  for (size_t i = 0; i < len; ++i) {
    uint8_t v = in[i];
    if (v != 0) {
      out[i] ^= exp_[log_c + log_[v]];
    }
  }
}

}  // namespace ursa::ec
