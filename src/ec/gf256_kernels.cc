#include "src/ec/gf256_kernels.h"

#include <cstring>

#include "src/common/cpu.h"
#include "src/common/logging.h"
#include "src/ec/gf256.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define URSA_GF_X86 1
#endif

namespace ursa::ec {
namespace {

// Scalar tail shared by the vector tiers: the split tables evaluate
// c*v = lo[v&15] ^ hi[v>>4] branch-free, so heads/tails shorter than one
// vector stay bit-identical to the wide path.
inline void TailMulAccum(const GfMulTable& t, const uint8_t* in, uint8_t* out, size_t len) {
  for (size_t i = 0; i < len; ++i) {
    out[i] = static_cast<uint8_t>(out[i] ^ t.lo[in[i] & 0x0F] ^ t.hi[in[i] >> 4]);
  }
}

// ---- Portable tier: slicing-by-8 ----
// Mirrors CRC32C slice8: one 64-bit load covers eight table lookups whose
// results assemble into a single 64-bit XOR store. No branches, no per-byte
// stores; the 256-entry product table stays L1-resident.

inline uint64_t PortableProduct(const uint8_t* tab, uint64_t w) {
  return static_cast<uint64_t>(tab[w & 0xFF]) |
         static_cast<uint64_t>(tab[(w >> 8) & 0xFF]) << 8 |
         static_cast<uint64_t>(tab[(w >> 16) & 0xFF]) << 16 |
         static_cast<uint64_t>(tab[(w >> 24) & 0xFF]) << 24 |
         static_cast<uint64_t>(tab[(w >> 32) & 0xFF]) << 32 |
         static_cast<uint64_t>(tab[(w >> 40) & 0xFF]) << 40 |
         static_cast<uint64_t>(tab[(w >> 48) & 0xFF]) << 48 |
         static_cast<uint64_t>(tab[(w >> 56) & 0xFF]) << 56;
}

void PortableMulAccum(const GfMulTable& t, const uint8_t* in, uint8_t* out, size_t len) {
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    uint64_t w;
    uint64_t o;
    std::memcpy(&w, in + i, 8);
    std::memcpy(&o, out + i, 8);
    o ^= PortableProduct(t.full, w);
    std::memcpy(out + i, &o, 8);
  }
  TailMulAccum(t, in + i, out + i, len - i);
}

void PortableMulAccumMulti(const GfMulTable* tables, const uint8_t* in, uint8_t* const* outs,
                           int m, size_t len) {
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    uint64_t w;
    std::memcpy(&w, in + i, 8);
    for (int j = 0; j < m; ++j) {
      uint64_t o;
      std::memcpy(&o, outs[j] + i, 8);
      o ^= PortableProduct(tables[j].full, w);
      std::memcpy(outs[j] + i, &o, 8);
    }
  }
  for (int j = 0; j < m; ++j) {
    TailMulAccum(tables[j], in + i, outs[j] + i, len - i);
  }
}

// ---- SIMD tiers (x86) ----
// Per-function target attributes keep the rest of the build on the baseline
// ISA; these are only reached after a cpuid check.

#ifdef URSA_GF_X86

// Fused-group width: tables for this many destinations fit comfortably in
// vector registers alongside the input block (m > kFusedGroup chunks).
constexpr int kFusedGroup = 8;

__attribute__((target("ssse3"))) void Ssse3MulAccum(const GfMulTable& t, const uint8_t* in,
                                                    uint8_t* out, size_t len) {
  const __m128i lo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.lo));
  const __m128i hi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.hi));
  const __m128i mask = _mm_set1_epi8(0x0F);
  size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i));
    __m128i l = _mm_and_si128(v, mask);
    __m128i h = _mm_and_si128(_mm_srli_epi64(v, 4), mask);
    __m128i prod = _mm_xor_si128(_mm_shuffle_epi8(lo, l), _mm_shuffle_epi8(hi, h));
    __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(out + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), _mm_xor_si128(d, prod));
  }
  TailMulAccum(t, in + i, out + i, len - i);
}

__attribute__((target("ssse3"))) void Ssse3MulAccumMulti(const GfMulTable* tables,
                                                         const uint8_t* in,
                                                         uint8_t* const* outs, int m,
                                                         size_t len) {
  const __m128i mask = _mm_set1_epi8(0x0F);
  for (int base = 0; base < m; base += kFusedGroup) {
    int g = m - base < kFusedGroup ? m - base : kFusedGroup;
    __m128i lo[kFusedGroup];
    __m128i hi[kFusedGroup];
    for (int j = 0; j < g; ++j) {
      lo[j] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(tables[base + j].lo));
      hi[j] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(tables[base + j].hi));
    }
    size_t i = 0;
    for (; i + 16 <= len; i += 16) {
      __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i));
      __m128i l = _mm_and_si128(v, mask);
      __m128i h = _mm_and_si128(_mm_srli_epi64(v, 4), mask);
      for (int j = 0; j < g; ++j) {
        uint8_t* o = outs[base + j] + i;
        __m128i prod = _mm_xor_si128(_mm_shuffle_epi8(lo[j], l), _mm_shuffle_epi8(hi[j], h));
        __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(o));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(o), _mm_xor_si128(d, prod));
      }
    }
    for (int j = 0; j < g; ++j) {
      TailMulAccum(tables[base + j], in + i, outs[base + j] + i, len - i);
    }
  }
}

__attribute__((target("avx2"))) void Avx2MulAccum(const GfMulTable& t, const uint8_t* in,
                                                  uint8_t* out, size_t len) {
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.lo)));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.hi)));
  const __m256i mask = _mm256_set1_epi8(0x0F);
  size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    __m256i l = _mm256_and_si256(v, mask);
    __m256i h = _mm256_and_si256(_mm256_srli_epi64(v, 4), mask);
    __m256i prod =
        _mm256_xor_si256(_mm256_shuffle_epi8(lo, l), _mm256_shuffle_epi8(hi, h));
    __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), _mm256_xor_si256(d, prod));
  }
  TailMulAccum(t, in + i, out + i, len - i);
}

__attribute__((target("avx2"))) void Avx2MulAccumMulti(const GfMulTable* tables,
                                                       const uint8_t* in, uint8_t* const* outs,
                                                       int m, size_t len) {
  const __m256i mask = _mm256_set1_epi8(0x0F);
  for (int base = 0; base < m; base += kFusedGroup) {
    int g = m - base < kFusedGroup ? m - base : kFusedGroup;
    __m256i lo[kFusedGroup];
    __m256i hi[kFusedGroup];
    for (int j = 0; j < g; ++j) {
      lo[j] = _mm256_broadcastsi128_si256(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(tables[base + j].lo)));
      hi[j] = _mm256_broadcastsi128_si256(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(tables[base + j].hi)));
    }
    size_t i = 0;
    for (; i + 32 <= len; i += 32) {
      __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
      __m256i l = _mm256_and_si256(v, mask);
      __m256i h = _mm256_and_si256(_mm256_srli_epi64(v, 4), mask);
      for (int j = 0; j < g; ++j) {
        uint8_t* o = outs[base + j] + i;
        __m256i prod =
            _mm256_xor_si256(_mm256_shuffle_epi8(lo[j], l), _mm256_shuffle_epi8(hi[j], h));
        __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(o));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(o), _mm256_xor_si256(d, prod));
      }
    }
    for (int j = 0; j < g; ++j) {
      TailMulAccum(tables[base + j], in + i, outs[base + j] + i, len - i);
    }
  }
}

bool Ssse3Available() { return __builtin_cpu_supports("ssse3") != 0; }
bool Avx2Available() { return __builtin_cpu_supports("avx2") != 0; }

#else

bool Ssse3Available() { return false; }
bool Avx2Available() { return false; }

#endif  // URSA_GF_X86

// ---- One-time runtime dispatch (the crc32.cc pattern) ----

using MulAccumFn = void (*)(const GfMulTable&, const uint8_t*, uint8_t*, size_t);
using MulAccumMultiFn = void (*)(const GfMulTable*, const uint8_t*, uint8_t* const*, int,
                                 size_t);

struct Dispatch {
  GfKernelTier tier;
  MulAccumFn mul;
  MulAccumMultiFn multi;
};

Dispatch PickBest() {
#ifdef URSA_GF_X86
  if (!ForcePortableKernels()) {
    if (Avx2Available()) {
      return {GfKernelTier::kAvx2, &Avx2MulAccum, &Avx2MulAccumMulti};
    }
    if (Ssse3Available()) {
      return {GfKernelTier::kSsse3, &Ssse3MulAccum, &Ssse3MulAccumMulti};
    }
  }
#endif
  return {GfKernelTier::kPortable, &PortableMulAccum, &PortableMulAccumMulti};
}

const Dispatch& Best() {
  static const Dispatch best = PickBest();
  return best;
}

}  // namespace

bool GfKernelTierAvailable(GfKernelTier tier) {
  switch (tier) {
    case GfKernelTier::kScalar:
    case GfKernelTier::kPortable:
      return true;
    case GfKernelTier::kSsse3:
      return !ForcePortableKernels() && Ssse3Available();
    case GfKernelTier::kAvx2:
      return !ForcePortableKernels() && Avx2Available();
  }
  return false;
}

GfKernelTier GfKernelBestTier() { return Best().tier; }

const char* GfKernelTierName(GfKernelTier tier) {
  switch (tier) {
    case GfKernelTier::kScalar:
      return "scalar";
    case GfKernelTier::kPortable:
      return "portable";
    case GfKernelTier::kSsse3:
      return "ssse3";
    case GfKernelTier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

void GfBuildMulTable(uint8_t coef, GfMulTable* table) {
  const Gf256& gf = Gf256::Instance();
  for (int x = 0; x < 16; ++x) {
    table->lo[x] = gf.Mul(coef, static_cast<uint8_t>(x));
    table->hi[x] = gf.Mul(coef, static_cast<uint8_t>(x << 4));
  }
  for (int v = 0; v < 256; ++v) {
    table->full[v] = static_cast<uint8_t>(table->lo[v & 0x0F] ^ table->hi[v >> 4]);
  }
}

void GfMulAccum(const GfMulTable& table, uint8_t coef, const uint8_t* in, uint8_t* out,
                size_t len) {
  if (coef == 0) {
    return;
  }
  if (coef == 1) {
    GfXorAccum(in, out, len);
    return;
  }
  Best().mul(table, in, out, len);
}

void GfMulAccumWith(GfKernelTier tier, const GfMulTable& table, uint8_t coef,
                    const uint8_t* in, uint8_t* out, size_t len) {
  switch (tier) {
    case GfKernelTier::kScalar:
      Gf256::Instance().MulAccum(coef, in, out, len);
      return;
    case GfKernelTier::kPortable:
      PortableMulAccum(table, in, out, len);
      return;
    case GfKernelTier::kSsse3:
#ifdef URSA_GF_X86
      Ssse3MulAccum(table, in, out, len);
      return;
#else
      break;
#endif
    case GfKernelTier::kAvx2:
#ifdef URSA_GF_X86
      Avx2MulAccum(table, in, out, len);
      return;
#else
      break;
#endif
  }
  URSA_CHECK(false) << "kernel tier unavailable on this build";
}

void GfMulAccumMulti(const GfMulTable* tables, const uint8_t* coefs, const uint8_t* in,
                     uint8_t* const* outs, int m, size_t len) {
  (void)coefs;
  if (m <= 0) {
    return;
  }
  Best().multi(tables, in, outs, m, len);
}

void GfMulAccumMultiWith(GfKernelTier tier, const GfMulTable* tables, const uint8_t* coefs,
                         const uint8_t* in, uint8_t* const* outs, int m, size_t len) {
  if (m <= 0) {
    return;
  }
  switch (tier) {
    case GfKernelTier::kScalar: {
      // The reference structure: one full pass over `in` per destination.
      const Gf256& gf = Gf256::Instance();
      for (int j = 0; j < m; ++j) {
        gf.MulAccum(coefs[j], in, outs[j], len);
      }
      return;
    }
    case GfKernelTier::kPortable:
      PortableMulAccumMulti(tables, in, outs, m, len);
      return;
    case GfKernelTier::kSsse3:
#ifdef URSA_GF_X86
      Ssse3MulAccumMulti(tables, in, outs, m, len);
      return;
#else
      break;
#endif
    case GfKernelTier::kAvx2:
#ifdef URSA_GF_X86
      Avx2MulAccumMulti(tables, in, outs, m, len);
      return;
#else
      break;
#endif
  }
  URSA_CHECK(false) << "kernel tier unavailable on this build";
}

void GfXorAccum(const uint8_t* in, uint8_t* out, size_t len) {
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    uint64_t a;
    uint64_t b;
    std::memcpy(&a, in + i, 8);
    std::memcpy(&b, out + i, 8);
    b ^= a;
    std::memcpy(out + i, &b, 8);
  }
  for (; i < len; ++i) {
    out[i] ^= in[i];
  }
}

}  // namespace ursa::ec
