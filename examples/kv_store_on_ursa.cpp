// A miniature persistent key-value store running on an Ursa virtual disk —
// the kind of migrated server application the paper's introduction motivates
// (traditional software using ordinary block I/O, unaware it sits on a
// distributed hybrid store).
//
// Layout: a fixed-size hash table of 4 KiB buckets. Each SET hashes the key
// to a bucket, reads it, inserts/updates the record, writes it back
// (read-modify-write — exactly the small random I/O mix of §2). Each GET is
// one 4 KiB random read served by the primary SSD replica.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/client/virtual_disk.h"
#include "src/common/rng.h"
#include "src/core/system.h"

using namespace ursa;

namespace {

constexpr uint64_t kBucketSize = 4096;
constexpr uint64_t kNumBuckets = 16384;  // 64 MiB table

// Bucket format: repeated records of [klen u16][vlen u16][key][value], zero
// klen terminates.
class MiniKv {
 public:
  MiniKv(sim::Simulator* sim, client::VirtualDisk* disk) : sim_(sim), disk_(disk) {}

  bool Set(const std::string& key, const std::string& value) {
    uint64_t offset = Bucket(key) * kBucketSize;
    std::vector<uint8_t> bucket(kBucketSize, 0);
    if (!Sync([&](storage::IoCallback done) {
          disk_->Read(offset, kBucketSize, bucket.data(), std::move(done));
        })) {
      return false;
    }
    // Rewrite the bucket with the key replaced/appended.
    std::vector<uint8_t> out(kBucketSize, 0);
    size_t w = 0;
    auto append = [&](const std::string& k, const uint8_t* v, size_t vlen) {
      if (w + 4 + k.size() + vlen + 4 > kBucketSize) {
        return false;  // bucket overflow: drop oldest (toy policy: skip)
      }
      uint16_t klen = static_cast<uint16_t>(k.size());
      uint16_t vl = static_cast<uint16_t>(vlen);
      std::memcpy(&out[w], &klen, 2);
      std::memcpy(&out[w + 2], &vl, 2);
      std::memcpy(&out[w + 4], k.data(), klen);
      std::memcpy(&out[w + 4 + klen], v, vl);
      w += 4 + klen + vl;
      return true;
    };
    ForEachRecord(bucket, [&](const std::string& k, const uint8_t* v, size_t vlen) {
      if (k != key) {
        append(k, v, vlen);
      }
    });
    if (!append(key, reinterpret_cast<const uint8_t*>(value.data()), value.size())) {
      return false;
    }
    return Sync([&](storage::IoCallback done) {
      disk_->Write(offset, kBucketSize, out.data(), std::move(done));
    });
  }

  bool Get(const std::string& key, std::string* value) {
    uint64_t offset = Bucket(key) * kBucketSize;
    std::vector<uint8_t> bucket(kBucketSize, 0);
    if (!Sync([&](storage::IoCallback done) {
          disk_->Read(offset, kBucketSize, bucket.data(), std::move(done));
        })) {
      return false;
    }
    bool found = false;
    ForEachRecord(bucket, [&](const std::string& k, const uint8_t* v, size_t vlen) {
      if (k == key) {
        value->assign(reinterpret_cast<const char*>(v), vlen);
        found = true;
      }
    });
    return found;
  }

 private:
  static uint64_t Bucket(const std::string& key) {
    uint64_t h = 1469598103934665603ULL;
    for (char c : key) {
      h = (h ^ static_cast<uint8_t>(c)) * 1099511628211ULL;
    }
    return h % kNumBuckets;
  }

  template <typename Fn>
  static void ForEachRecord(const std::vector<uint8_t>& bucket, Fn fn) {
    size_t r = 0;
    while (r + 4 <= kBucketSize) {
      uint16_t klen = 0;
      uint16_t vlen = 0;
      std::memcpy(&klen, &bucket[r], 2);
      std::memcpy(&vlen, &bucket[r + 2], 2);
      if (klen == 0 || r + 4 + klen + vlen > kBucketSize) {
        break;
      }
      std::string k(reinterpret_cast<const char*>(&bucket[r + 4]), klen);
      fn(k, &bucket[r + 4 + klen], vlen);
      r += 4 + klen + vlen;
    }
  }

  // Runs one async op to completion on the simulator.
  bool Sync(const std::function<void(storage::IoCallback)>& op) {
    Status status = Internal("pending");
    op([&](const Status& s) { status = s; });
    sim_->RunUntil(sim_->Now() + msec(100));
    return status.ok();
  }

  sim::Simulator* sim_;
  client::VirtualDisk* disk_;
};

}  // namespace

int main() {
  std::printf("== MiniKV on an Ursa virtual disk ==\n\n");
  core::TestBed bed(core::UrsaHybridProfile(3));
  client::VirtualDisk* disk = bed.NewDisk(256 * kMiB);
  MiniKv kv(&bed.sim(), disk);

  // Populate.
  Rng rng(7);
  constexpr int kKeys = 200;
  for (int i = 0; i < kKeys; ++i) {
    std::string key = "user:" + std::to_string(i);
    std::string value = "profile-" + std::to_string(rng.Next() % 100000);
    if (!kv.Set(key, value)) {
      std::printf("SET failed for %s\n", key.c_str());
      return 1;
    }
  }
  std::printf("stored %d keys\n", kKeys);

  // Update a few, read everything back.
  kv.Set("user:7", "updated-profile");
  kv.Set("user:42", "another-update");
  int hits = 0;
  std::string value;
  for (int i = 0; i < kKeys; ++i) {
    if (kv.Get("user:" + std::to_string(i), &value)) {
      ++hits;
    }
  }
  kv.Get("user:7", &value);
  std::printf("read back %d/%d keys; user:7 -> \"%s\"\n", hits, kKeys, value.c_str());

  std::printf("\nblock-level view: %llu reads / %llu writes issued, "
              "read mean %.0f us, write mean %.0f us\n",
              static_cast<unsigned long long>(disk->stats().reads),
              static_cast<unsigned long long>(disk->stats().writes),
              disk->stats().read_latency_us.Mean(), disk->stats().write_latency_us.Mean());
  return hits == kKeys ? 0 : 1;
}
