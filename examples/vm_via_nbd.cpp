// A "VM" talking to Ursa exactly the way QEMU would (§3.1): raw NBD wire
// bytes into the client portal, which translates them into the replication
// protocol against the hybrid cluster. The VM formats a toy filesystem
// superblock, writes a few files, rereads them through the wire, and
// disconnects.
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <vector>

#include "src/client/block_layer.h"
#include "src/client/nbd.h"
#include "src/core/system.h"

using namespace ursa;

namespace {

// Minimal in-example NBD "initiator": frames requests, matches replies by
// handle.
class VmNbdInitiator {
 public:
  VmNbdInitiator(sim::Simulator* sim, client::NbdSession* session)
      : sim_(sim), session_(session) {}

  // Feed server->client bytes here.
  void OnServerBytes(std::vector<uint8_t> bytes) {
    inbound_.insert(inbound_.end(), bytes.begin(), bytes.end());
  }

  bool Write(uint64_t offset, const std::vector<uint8_t>& data) {
    client::NbdRequest req;
    req.command = client::NbdCommand::kWrite;
    req.handle = next_handle_++;
    req.offset = offset;
    req.length = static_cast<uint32_t>(data.size());
    SendRequest(req, data);
    return AwaitReply(req.handle, nullptr, 0);
  }

  bool Read(uint64_t offset, uint32_t length, std::vector<uint8_t>* out) {
    client::NbdRequest req;
    req.command = client::NbdCommand::kRead;
    req.handle = next_handle_++;
    req.offset = offset;
    req.length = length;
    SendRequest(req, {});
    return AwaitReply(req.handle, out, length);
  }

  void Disconnect() {
    client::NbdRequest req;
    req.command = client::NbdCommand::kDisconnect;
    req.handle = next_handle_++;
    SendRequest(req, {});
    sim_->RunUntil(sim_->Now() + msec(10));
  }

 private:
  void SendRequest(const client::NbdRequest& req, const std::vector<uint8_t>& payload) {
    std::vector<uint8_t> wire(client::NbdRequest::kWireSize);
    req.EncodeTo(wire.data());
    wire.insert(wire.end(), payload.begin(), payload.end());
    session_->Consume(wire.data(), wire.size());
  }

  bool AwaitReply(uint64_t handle, std::vector<uint8_t>* payload, uint32_t payload_len) {
    sim_->RunUntil(sim_->Now() + sec(2));
    if (inbound_.size() < client::NbdReply::kWireSize + payload_len) {
      return false;
    }
    Result<client::NbdReply> reply = client::NbdReply::Decode(inbound_.data());
    if (!reply.ok() || reply->handle != handle || reply->error != client::kNbdOk) {
      return false;
    }
    if (payload != nullptr) {
      payload->assign(inbound_.begin() + client::NbdReply::kWireSize,
                      inbound_.begin() + client::NbdReply::kWireSize + payload_len);
    }
    inbound_.erase(inbound_.begin(),
                   inbound_.begin() + client::NbdReply::kWireSize + payload_len);
    return true;
  }

  sim::Simulator* sim_;
  client::NbdSession* session_;
  std::vector<uint8_t> inbound_;
  uint64_t next_handle_ = 1;
};

}  // namespace

int main() {
  std::printf("== A VM on Ursa via the NBD wire protocol ==\n\n");
  core::TestBed bed(core::UrsaHybridProfile(3));
  client::VirtualDisk* disk = bed.NewDisk(256 * kMiB);
  client::VirtualDiskLayer layer(disk);

  VmNbdInitiator* vm_ptr = nullptr;
  client::NbdSession session(&layer, [&vm_ptr](std::vector<uint8_t> bytes) {
    if (vm_ptr != nullptr) {
      vm_ptr->OnServerBytes(std::move(bytes));
    }
  });
  VmNbdInitiator vm(&bed.sim(), &session);
  vm_ptr = &vm;

  // 1. "mkfs": a superblock at LBA 0.
  std::vector<uint8_t> superblock(4096, 0);
  std::snprintf(reinterpret_cast<char*>(superblock.data()), superblock.size(),
                "TOYFS v1 blocks=%llu", static_cast<unsigned long long>(disk->size() / 4096));
  if (!vm.Write(0, superblock)) {
    std::printf("mkfs failed\n");
    return 1;
  }
  std::printf("mkfs: wrote superblock over NBD\n");

  // 2. Write a handful of "files" (one 16 KiB extent each).
  constexpr int kFiles = 10;
  std::vector<std::vector<uint8_t>> files;
  for (int f = 0; f < kFiles; ++f) {
    std::vector<uint8_t> content(16 * kKiB);
    for (size_t i = 0; i < content.size(); ++i) {
      content[i] = static_cast<uint8_t>(f * 31 + i);
    }
    if (!vm.Write(64 * kKiB + static_cast<uint64_t>(f) * 16 * kKiB, content)) {
      std::printf("file %d write failed\n", f);
      return 1;
    }
    files.push_back(std::move(content));
  }
  std::printf("wrote %d files (%d KiB each) over NBD\n", kFiles, 16);

  // 3. Remount: reread the superblock and verify every file byte-for-byte.
  std::vector<uint8_t> sb_back;
  if (!vm.Read(0, 4096, &sb_back) || sb_back != superblock) {
    std::printf("superblock verification failed\n");
    return 1;
  }
  int verified = 0;
  for (int f = 0; f < kFiles; ++f) {
    std::vector<uint8_t> back;
    if (vm.Read(64 * kKiB + static_cast<uint64_t>(f) * 16 * kKiB, 16 * kKiB, &back) &&
        back == files[f]) {
      ++verified;
    }
  }
  std::printf("remount: superblock OK, %d/%d files verified\n", verified, kFiles);

  vm.Disconnect();
  std::printf("\nNBD session: %llu requests served, %llu errors; VM latency view: "
              "read %.0f us / write %.0f us mean\n",
              static_cast<unsigned long long>(session.requests_served()),
              static_cast<unsigned long long>(session.errors_returned()),
              disk->stats().read_latency_us.Mean(), disk->stats().write_latency_us.Mean());
  std::printf("demo %s\n", verified == kFiles ? "PASSED" : "FAILED");
  return verified == kFiles ? 0 : 1;
}
