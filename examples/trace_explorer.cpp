// Trace explorer: inspect any of the 36 synthesized MSR-style volumes the
// way §2 does — block-size mix, read/write ratio, idealized cache hit ratio
// — and optionally replay it against a chosen system.
//
//   build/examples/trace_explorer              # table of all 36 volumes
//   build/examples/trace_explorer prxy_0       # details + replay on Ursa
#include <cstdio>
#include <cstring>
#include <map>

#include "src/core/system.h"
#include "src/trace/cache_sim.h"
#include "src/trace/msr_generator.h"

using namespace ursa;

namespace {

void Summarize(const trace::TraceProfile& profile, core::Table* table) {
  auto records = trace::SynthesizeTrace(profile, 30000, 99);
  uint64_t writes = 0;
  uint64_t small = 0;
  uint64_t bytes = 0;
  for (const auto& r : records) {
    writes += r.is_write ? 1 : 0;
    small += r.length <= 8 * 1024 ? 1 : 0;
    bytes += r.length;
  }
  trace::CacheSimResult cache = trace::SimulateUnlimitedCache(records);
  table->AddRow({profile.name, core::Table::Num(100.0 * writes / records.size(), 1),
                 core::Table::Num(100.0 * small / records.size(), 1),
                 core::Table::Num(static_cast<double>(bytes) / records.size() / 1024, 1),
                 core::Table::Num(100.0 * cache.ReadHitRatio(), 1)});
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::printf("== All 36 MSR-style volumes (synthesized; 30K ops each) ==\n\n");
    core::Table table({"Volume", "write %", "<=8K %", "mean KB", "cache hit %"});
    for (const trace::TraceProfile& profile : trace::MsrTraceProfiles()) {
      Summarize(profile, &table);
    }
    table.Print();
    std::printf("\nPass a volume name (e.g. prxy_0) to replay it against Ursa.\n");
    return 0;
  }

  const trace::TraceProfile* profile = trace::FindTraceProfile(argv[1]);
  if (profile == nullptr) {
    std::printf("unknown volume '%s'\n", argv[1]);
    return 1;
  }
  std::printf("== %s ==\n\n", profile->name.c_str());
  core::Table table({"Volume", "write %", "<=8K %", "mean KB", "cache hit %"});
  Summarize(*profile, &table);
  table.Print();

  std::printf("\nreplaying 20K ops at qd16 against Ursa (hybrid and SSD-only)...\n\n");
  auto records = trace::SynthesizeTrace(*profile, 20000, 7);
  core::Table replay({"System", "IOPS", "read us (mean)", "write us (mean)"});
  for (const core::SystemProfile& system :
       {core::UrsaHybridProfile(3), core::UrsaSsdProfile(3)}) {
    core::TestBed bed(system);
    auto* disk = bed.NewDisk(8ull * kGiB);
    core::RunMetrics m = bed.RunTrace(disk, records, 16, profile->name);
    replay.AddRow({system.name, core::Table::Int(m.iops()),
                   core::Table::Num(m.read_latency_us.Mean(), 0),
                   core::Table::Num(m.write_latency_us.Mean(), 0)});
  }
  replay.Print();
  return 0;
}
