// Snapshot & backup demo: the §5.1 pluggable-module stack in action.
//
// A "database" writes continuously to its virtual disk; we take a
// copy-on-write snapshot mid-stream, keep writing, then "back up" the frozen
// image and verify it reflects exactly the moment of the snapshot — while
// the live disk kept moving. The stack also includes the client-side cache,
// so repeat reads of hot blocks never touch the network.
#include <cstdio>
#include <vector>

#include "src/client/block_layer.h"
#include "src/client/caching_layer.h"
#include "src/client/snapshot_layer.h"
#include "src/common/rng.h"
#include "src/core/system.h"

using namespace ursa;

namespace {

bool SyncWrite(sim::Simulator& sim, client::BlockLayer* layer, uint64_t offset,
               const std::vector<uint8_t>& data) {
  Status status = Internal("pending");
  layer->Write(offset, data.size(), data.data(), [&](const Status& s) { status = s; });
  sim.RunUntil(sim.Now() + sec(2));
  return status.ok();
}

std::vector<uint8_t> Pattern(size_t n, int tag) {
  std::vector<uint8_t> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<uint8_t>(tag * 37 + i);
  }
  return v;
}

}  // namespace

int main() {
  std::printf("== Snapshot & backup on the client module stack ==\n\n");
  core::TestBed bed(core::UrsaHybridProfile(3));
  sim::Simulator& sim = bed.sim();

  // Stack: Snapshot -> Cache -> VirtualDisk (decorator pattern, §5.1).
  client::VirtualDisk* disk = bed.NewDisk(512 * kMiB);
  client::VirtualDiskLayer base(disk);
  client::CachingLayer cache(&base, /*capacity_lines=*/1024);
  client::SnapshotLayer snap(&cache);
  std::printf("guest-visible disk: %llu MiB (upper half reserved for COW grains)\n\n",
              static_cast<unsigned long long>(snap.size() / kMiB));

  // Phase 1: the "database" lays down its initial state.
  constexpr int kRecords = 32;
  std::vector<std::vector<uint8_t>> generation1;
  for (int r = 0; r < kRecords; ++r) {
    generation1.push_back(Pattern(16 * kKiB, r));
    if (!SyncWrite(sim, &snap, r * 64 * kKiB, generation1.back())) {
      std::printf("initial write failed\n");
      return 1;
    }
  }
  std::printf("[t=%.2fs] wrote %d records (generation 1)\n", ToSec(sim.Now()), kRecords);

  // Phase 2: snapshot, then keep writing.
  snap.TakeSnapshot();
  std::printf("[t=%.2fs] snapshot taken\n", ToSec(sim.Now()));
  Rng rng(5);
  int updated = 0;
  for (int r = 0; r < kRecords; ++r) {
    if (rng.Bernoulli(0.5)) {
      if (!SyncWrite(sim, &snap, r * 64 * kKiB, Pattern(16 * kKiB, 1000 + r))) {
        return 1;
      }
      ++updated;
    }
  }
  std::printf("[t=%.2fs] updated %d records after the snapshot (%zu grains COW-preserved)\n",
              ToSec(sim.Now()), updated, snap.preserved_grains());

  // Phase 3: "back up" the frozen image and verify generation 1.
  int verified = 0;
  for (int r = 0; r < kRecords; ++r) {
    std::vector<uint8_t> frozen(16 * kKiB, 0);
    Status status = Internal("pending");
    snap.ReadSnapshot(r * 64 * kKiB, frozen.size(), frozen.data(),
                      [&](const Status& s) { status = s; });
    sim.RunUntil(sim.Now() + sec(2));
    if (status.ok() && frozen == generation1[r]) {
      ++verified;
    }
  }
  std::printf("[t=%.2fs] backup verified %d/%d records against generation 1\n",
              ToSec(sim.Now()), verified, kRecords);

  snap.DeleteSnapshot();
  std::printf("[t=%.2fs] snapshot deleted, COW space released\n", ToSec(sim.Now()));
  std::printf("\nclient cache: %llu hits / %llu misses over the run\n",
              static_cast<unsigned long long>(cache.hits()),
              static_cast<unsigned long long>(cache.misses()));
  std::printf("demo %s\n", verified == kRecords ? "PASSED" : "FAILED");
  return verified == kRecords ? 0 : 1;
}
