// The paper's headline claim, as a runnable demo: Ursa's SSD-HDD-hybrid mode
// delivers (almost) SSD-only performance for the workloads that matter —
// random small I/O — while storing two of every three replicas on HDDs.
//
// Runs the same 4 KiB random read/write workload against all three
// replication modes plus cost arithmetic for the hardware each one needs.
#include <cstdio>
#include <string>

#include "src/core/system.h"

using namespace ursa;

int main() {
  std::printf("== Hybrid vs SSD-only vs HDD-only ==\n\n");

  core::WorkloadSpec read_spec;
  read_spec.block_size = 4 * kKiB;
  read_spec.queue_depth = 16;
  read_spec.read_fraction = 1.0;
  core::WorkloadSpec write_spec = read_spec;
  write_spec.read_fraction = 0.0;

  struct Row {
    std::string mode;
    double read_iops;
    double write_iops;
    double read_lat;
    double write_lat;
    int ssds_per_replica_set;  // how many of the 3 replicas need SSD space
  };
  Row rows[3];

  int i = 0;
  for (auto [profile, ssds] :
       {std::pair{core::UrsaSsdProfile(3), 3}, std::pair{core::UrsaHybridProfile(3), 1},
        std::pair{core::UrsaHddProfile(3), 0}}) {
    core::TestBed bed(profile);
    auto* disk = bed.NewDisk(2ull * kGiB);
    core::RunMetrics r = bed.RunWorkload(disk, read_spec, msec(200), sec(2), "r");
    core::RunMetrics w = bed.RunWorkload(disk, write_spec, msec(200), sec(2), "w");
    rows[i++] = Row{profile.name, r.read_iops(), w.write_iops(),
                    r.read_latency_us.Mean(), w.write_latency_us.Mean(), ssds};
  }

  core::Table table({"Mode", "Read IOPS", "Write IOPS", "Read us", "Write us",
                     "SSD replicas/3"});
  for (const Row& r : rows) {
    table.AddRow({r.mode, core::Table::Int(r.read_iops), core::Table::Int(r.write_iops),
                  core::Table::Num(r.read_lat, 0), core::Table::Num(r.write_lat, 0),
                  std::to_string(r.ssds_per_replica_set)});
  }
  table.Print();

  double hybrid_vs_ssd_read = rows[1].read_iops / rows[0].read_iops;
  double hybrid_vs_ssd_write = rows[1].write_iops / rows[0].write_iops;
  std::printf("\nhybrid achieves %.0f%% of SSD-only read IOPS and %.0f%% of its write IOPS\n",
              100 * hybrid_vs_ssd_read, 100 * hybrid_vs_ssd_write);
  std::printf("while using 1/3 of the SSD capacity (primary replicas only).\n");
  std::printf("\ncost sketch (per TB of logical data, 3-way replication):\n");
  double ssd_per_tb = 3.0;  // relative $ of SSD vs HDD capacity (order-of-magnitude)
  std::printf("  SSD-only : 3 SSD replicas            -> cost ~ %.1f units\n", 3 * ssd_per_tb);
  std::printf("  hybrid   : 1 SSD + 2 HDD replicas    -> cost ~ %.1f units\n",
              ssd_per_tb + 2 * 1.0);
  std::printf("  HDD-only : 3 HDD replicas            -> cost ~ %.1f units (but ~%.0fx slower writes)\n",
              3 * 1.0, rows[1].write_iops / rows[2].write_iops);
  return hybrid_vs_ssd_read > 0.8 && hybrid_vs_ssd_write > 0.8 ? 0 : 1;
}
