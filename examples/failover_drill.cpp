// Failover drill: crash replicas while a client keeps reading and writing,
// and watch the §4.2 machinery — temporary-primary switching, view change,
// recovery transfer, incremental repair — keep the disk available and
// byte-correct throughout.
#include <cstdio>
#include <vector>

#include "src/client/virtual_disk.h"
#include "src/core/system.h"

using namespace ursa;

namespace {

std::vector<uint8_t> Pattern(size_t n, uint8_t seed) {
  std::vector<uint8_t> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<uint8_t>(seed + i * 131);
  }
  return v;
}

bool SyncWrite(sim::Simulator& sim, client::VirtualDisk* disk, uint64_t offset,
               const std::vector<uint8_t>& data) {
  Status status = Internal("pending");
  disk->Write(offset, data.size(), data.data(), [&](const Status& s) { status = s; });
  sim.RunUntil(sim.Now() + sec(10));
  return status.ok();
}

bool SyncReadCheck(sim::Simulator& sim, client::VirtualDisk* disk, uint64_t offset,
                   const std::vector<uint8_t>& expect) {
  std::vector<uint8_t> got(expect.size(), 0);
  Status status = Internal("pending");
  disk->Read(offset, got.size(), got.data(), [&](const Status& s) { status = s; });
  sim.RunUntil(sim.Now() + sec(10));
  return status.ok() && got == expect;
}

}  // namespace

int main() {
  std::printf("== Failover drill ==\n\n");
  core::TestBed bed(core::UrsaHybridProfile(3));
  sim::Simulator& sim = bed.sim();
  cluster::Cluster& cluster = bed.cluster();
  client::VirtualDisk* disk = bed.NewDisk(256 * kMiB, 3, 1);

  auto block_a = Pattern(8192, 11);
  auto block_b = Pattern(8192, 77);

  // Baseline write.
  if (!SyncWrite(sim, disk, 0, block_a)) {
    std::printf("baseline write failed\n");
    return 1;
  }
  std::printf("[t=%.2fs] wrote block A\n", ToSec(sim.Now()));

  // Find the primary of chunk 0 and crash it.
  const cluster::DiskMeta* meta = *cluster.master().GetDisk(1);
  cluster::ChunkLayout layout = meta->chunks[0];
  cluster::ServerId primary = layout.replicas[0].server;
  std::printf("[t=%.2fs] crashing the PRIMARY (server %u, SSD)\n", ToSec(sim.Now()), primary);
  cluster.CrashServer(primary);

  // Reads keep working: the client times out on the dead primary, switches
  // to a backup as temporary primary (journal-aware reads), and reports the
  // failure to the master.
  bool ok = SyncReadCheck(sim, disk, 0, block_a);
  std::printf("[t=%.2fs] read during failure: %s (primary switches: %llu)\n", ToSec(sim.Now()),
              ok ? "correct data" : "WRONG DATA", static_cast<unsigned long long>(
                                                      disk->stats().primary_switches));
  if (!ok) {
    return 1;
  }

  // Writes also keep working (majority commit while the view changes).
  if (!SyncWrite(sim, disk, 0, block_b)) {
    std::printf("write during failure FAILED\n");
    return 1;
  }
  std::printf("[t=%.2fs] overwrote block A with B during recovery\n", ToSec(sim.Now()));

  // Give recovery time to finish, then inspect the new view.
  sim.RunUntil(sim.Now() + sec(10));
  meta = *cluster.master().GetDisk(1);
  const cluster::ChunkLayout& after = meta->chunks[0];
  std::printf("[t=%.2fs] view changed %llu -> %llu; %llu chunks recovered, %.1f MB moved\n",
              ToSec(sim.Now()), static_cast<unsigned long long>(layout.view),
              static_cast<unsigned long long>(after.view),
              static_cast<unsigned long long>(cluster.master().recovery_stats().chunks_recovered),
              static_cast<double>(cluster.master().recovery_stats().bytes_transferred) / 1e6);

  // The data survived the whole drill.
  disk->RefreshLayout();
  ok = SyncReadCheck(sim, disk, 0, block_b);
  std::printf("[t=%.2fs] post-recovery read: %s\n", ToSec(sim.Now()),
              ok ? "correct data" : "WRONG DATA");

  // Round two: crash a backup, write, restore it, let incremental repair
  // bring it back to the current version.
  cluster::ServerId backup = after.replicas[2].server;
  std::printf("\n[t=%.2fs] crashing a BACKUP (server %u, HDD)\n", ToSec(sim.Now()), backup);
  cluster.CrashServer(backup);
  auto block_c = Pattern(8192, 123);
  if (!SyncWrite(sim, disk, 16384, block_c)) {
    std::printf("write with one backup down FAILED\n");
    return 1;
  }
  std::printf("[t=%.2fs] wrote block C with the backup down (majority commit)\n",
              ToSec(sim.Now()));
  cluster.RestoreServer(backup);
  Status repair = Internal("pending");
  cluster.master().RepairReplica(after.chunk, backup, [&](Status s) { repair = s; });
  sim.RunUntil(sim.Now() + sec(10));
  std::printf("[t=%.2fs] incremental repair: %s (%llu incremental, %llu full copies)\n",
              ToSec(sim.Now()), repair.ToString().c_str(),
              static_cast<unsigned long long>(
                  cluster.master().recovery_stats().incremental_repairs),
              static_cast<unsigned long long>(cluster.master().recovery_stats().full_copies));

  ok = ok && SyncReadCheck(sim, disk, 16384, block_c);
  std::printf("\ndrill %s\n", ok && repair.ok() ? "PASSED" : "FAILED");
  return ok && repair.ok() ? 0 : 1;
}
