// Quickstart: stand up an Ursa cluster, create a virtual disk, write and
// read some data, and peek at what the hybrid machinery did underneath.
//
//   build/examples/quickstart
//
// Everything runs inside the discrete-event simulator: the cluster is a
// 3-machine hybrid deployment (primaries on SSD, journaled backups on HDD),
// and the client is the same richly-featured portal the benchmarks use.
#include <cstdio>
#include <cstring>
#include <vector>

#include "src/client/virtual_disk.h"
#include "src/core/system.h"

using namespace ursa;

int main() {
  std::printf("== Ursa quickstart ==\n\n");

  // 1. Build a 3-machine hybrid cluster (the paper's small testbed shape).
  core::TestBed bed(core::UrsaHybridProfile(3));
  sim::Simulator& sim = bed.sim();

  // 2. Create and open a 1 GiB virtual disk (3-way replication, striping
  //    group of 2). The TestBed wires a client on a dedicated VMM host.
  client::VirtualDisk* disk = bed.NewDisk(1 * kGiB, /*replication=*/3, /*stripe_group=*/2);
  std::printf("created a %llu MiB virtual disk, lease held by client %llu\n",
              static_cast<unsigned long long>(disk->size() / kMiB),
              static_cast<unsigned long long>(disk->client_id()));

  // 3. Write a block. 4 KiB is a "tiny write" (<= Tc): the client replicates
  //    it to all three replicas itself.
  std::vector<uint8_t> hello(4096, 0);
  std::snprintf(reinterpret_cast<char*>(hello.data()), hello.size(),
                "hello from the hybrid block store");
  bool done = false;
  disk->Write(0, hello.size(), hello.data(), [&](const Status& s) {
    std::printf("write committed: %s\n", s.ToString().c_str());
    done = true;
  });
  sim.RunUntil(sim.Now() + msec(50));
  if (!done) {
    std::printf("write did not complete!\n");
    return 1;
  }

  // 4. Read it back from the primary (SSD) replica.
  std::vector<uint8_t> back(4096, 0);
  done = false;
  disk->Read(0, back.size(), back.data(), [&](const Status& s) {
    std::printf("read returned:   %s -> \"%s\"\n", s.ToString().c_str(),
                reinterpret_cast<const char*>(back.data()));
    done = true;
  });
  sim.RunUntil(sim.Now() + msec(50));

  // 5. A large write (> Tj = 64 KiB) bypasses the journals straight to the
  //    backup HDDs.
  std::vector<uint8_t> big(256 * kKiB, 0xAB);
  disk->Write(1 * kMiB, big.size(), big.data(), [](const Status& s) {
    std::printf("256 KiB write (journal bypass) committed: %s\n", s.ToString().c_str());
  });
  sim.RunUntil(sim.Now() + msec(100));

  // 6. What happened underneath?
  uint64_t journaled = 0;
  uint64_t bypassed = 0;
  uint64_t replayed = 0;
  for (const auto* jm : bed.cluster().journal_managers()) {
    journaled += jm->stats().journaled_writes;
    bypassed += jm->stats().bypassed_writes;
    replayed += jm->stats().replayed_records;
  }
  std::printf("\nhybrid path stats across all backup HDDs:\n");
  std::printf("  journaled backup writes : %llu (the 4 KiB write, on 2 backups)\n",
              static_cast<unsigned long long>(journaled));
  std::printf("  bypassed backup writes  : %llu (the 256 KiB write, on 2 backups)\n",
              static_cast<unsigned long long>(bypassed));
  std::printf("  records replayed to HDD : %llu\n",
              static_cast<unsigned long long>(replayed));
  std::printf("\nclient view: %llu reads, %llu writes, read mean %.0f us, write mean %.0f us\n",
              static_cast<unsigned long long>(disk->stats().reads),
              static_cast<unsigned long long>(disk->stats().writes),
              disk->stats().read_latency_us.Mean(), disk->stats().write_latency_us.Mean());
  return 0;
}
