# Empty dependencies file for bench_fig02_cache_hit.
# This may be replaced when dependencies are built.
