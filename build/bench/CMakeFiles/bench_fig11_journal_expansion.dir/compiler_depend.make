# Empty compiler generated dependencies file for bench_fig11_journal_expansion.
# This may be replaced when dependencies are built.
