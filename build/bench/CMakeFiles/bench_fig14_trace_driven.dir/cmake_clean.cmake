file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_trace_driven.dir/bench_fig14_trace_driven.cc.o"
  "CMakeFiles/bench_fig14_trace_driven.dir/bench_fig14_trace_driven.cc.o.d"
  "bench_fig14_trace_driven"
  "bench_fig14_trace_driven.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_trace_driven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
