file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_failure_ratios.dir/bench_table1_failure_ratios.cc.o"
  "CMakeFiles/bench_table1_failure_ratios.dir/bench_table1_failure_ratios.cc.o.d"
  "bench_table1_failure_ratios"
  "bench_table1_failure_ratios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_failure_ratios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
