# Empty dependencies file for bench_fig01_blocksize_cdf.
# This may be replaced when dependencies are built.
