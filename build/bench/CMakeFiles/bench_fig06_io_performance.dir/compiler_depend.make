# Empty compiler generated dependencies file for bench_fig06_io_performance.
# This may be replaced when dependencies are built.
