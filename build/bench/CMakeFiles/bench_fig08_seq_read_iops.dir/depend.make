# Empty dependencies file for bench_fig08_seq_read_iops.
# This may be replaced when dependencies are built.
