file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_seq_read_iops.dir/bench_fig08_seq_read_iops.cc.o"
  "CMakeFiles/bench_fig08_seq_read_iops.dir/bench_fig08_seq_read_iops.cc.o.d"
  "bench_fig08_seq_read_iops"
  "bench_fig08_seq_read_iops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_seq_read_iops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
