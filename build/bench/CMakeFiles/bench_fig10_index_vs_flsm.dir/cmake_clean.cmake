file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_index_vs_flsm.dir/bench_fig10_index_vs_flsm.cc.o"
  "CMakeFiles/bench_fig10_index_vs_flsm.dir/bench_fig10_index_vs_flsm.cc.o.d"
  "bench_fig10_index_vs_flsm"
  "bench_fig10_index_vs_flsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_index_vs_flsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
