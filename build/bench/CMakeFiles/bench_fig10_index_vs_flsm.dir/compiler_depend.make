# Empty compiler generated dependencies file for bench_fig10_index_vs_flsm.
# This may be replaced when dependencies are built.
