file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_seq_write_iops.dir/bench_fig09_seq_write_iops.cc.o"
  "CMakeFiles/bench_fig09_seq_write_iops.dir/bench_fig09_seq_write_iops.cc.o.d"
  "bench_fig09_seq_write_iops"
  "bench_fig09_seq_write_iops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_seq_write_iops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
