# Empty dependencies file for bench_fig09_seq_write_iops.
# This may be replaced when dependencies are built.
