file(REMOVE_RECURSE
  "CMakeFiles/bench_ec_comparison.dir/bench_ec_comparison.cc.o"
  "CMakeFiles/bench_ec_comparison.dir/bench_ec_comparison.cc.o.d"
  "bench_ec_comparison"
  "bench_ec_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ec_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
