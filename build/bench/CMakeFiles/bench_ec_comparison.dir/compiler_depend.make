# Empty compiler generated dependencies file for bench_ec_comparison.
# This may be replaced when dependencies are built.
