# Empty dependencies file for ursa_client.
# This may be replaced when dependencies are built.
