file(REMOVE_RECURSE
  "CMakeFiles/ursa_client.dir/client/lease.cc.o"
  "CMakeFiles/ursa_client.dir/client/lease.cc.o.d"
  "CMakeFiles/ursa_client.dir/client/nbd.cc.o"
  "CMakeFiles/ursa_client.dir/client/nbd.cc.o.d"
  "CMakeFiles/ursa_client.dir/client/virtual_disk.cc.o"
  "CMakeFiles/ursa_client.dir/client/virtual_disk.cc.o.d"
  "libursa_client.a"
  "libursa_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ursa_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
