file(REMOVE_RECURSE
  "libursa_client.a"
)
