# Empty dependencies file for ursa_journal.
# This may be replaced when dependencies are built.
