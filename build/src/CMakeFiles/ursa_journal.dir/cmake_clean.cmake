file(REMOVE_RECURSE
  "CMakeFiles/ursa_journal.dir/journal/journal_lite.cc.o"
  "CMakeFiles/ursa_journal.dir/journal/journal_lite.cc.o.d"
  "CMakeFiles/ursa_journal.dir/journal/journal_manager.cc.o"
  "CMakeFiles/ursa_journal.dir/journal/journal_manager.cc.o.d"
  "CMakeFiles/ursa_journal.dir/journal/journal_record.cc.o"
  "CMakeFiles/ursa_journal.dir/journal/journal_record.cc.o.d"
  "CMakeFiles/ursa_journal.dir/journal/journal_replayer.cc.o"
  "CMakeFiles/ursa_journal.dir/journal/journal_replayer.cc.o.d"
  "CMakeFiles/ursa_journal.dir/journal/journal_writer.cc.o"
  "CMakeFiles/ursa_journal.dir/journal/journal_writer.cc.o.d"
  "libursa_journal.a"
  "libursa_journal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ursa_journal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
