
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/journal/journal_lite.cc" "src/CMakeFiles/ursa_journal.dir/journal/journal_lite.cc.o" "gcc" "src/CMakeFiles/ursa_journal.dir/journal/journal_lite.cc.o.d"
  "/root/repo/src/journal/journal_manager.cc" "src/CMakeFiles/ursa_journal.dir/journal/journal_manager.cc.o" "gcc" "src/CMakeFiles/ursa_journal.dir/journal/journal_manager.cc.o.d"
  "/root/repo/src/journal/journal_record.cc" "src/CMakeFiles/ursa_journal.dir/journal/journal_record.cc.o" "gcc" "src/CMakeFiles/ursa_journal.dir/journal/journal_record.cc.o.d"
  "/root/repo/src/journal/journal_replayer.cc" "src/CMakeFiles/ursa_journal.dir/journal/journal_replayer.cc.o" "gcc" "src/CMakeFiles/ursa_journal.dir/journal/journal_replayer.cc.o.d"
  "/root/repo/src/journal/journal_writer.cc" "src/CMakeFiles/ursa_journal.dir/journal/journal_writer.cc.o" "gcc" "src/CMakeFiles/ursa_journal.dir/journal/journal_writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ursa_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
