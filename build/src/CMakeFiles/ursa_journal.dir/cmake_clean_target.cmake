file(REMOVE_RECURSE
  "libursa_journal.a"
)
