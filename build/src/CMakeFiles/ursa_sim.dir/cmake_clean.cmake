file(REMOVE_RECURSE
  "CMakeFiles/ursa_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/ursa_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/ursa_sim.dir/sim/resource.cc.o"
  "CMakeFiles/ursa_sim.dir/sim/resource.cc.o.d"
  "CMakeFiles/ursa_sim.dir/sim/simulator.cc.o"
  "CMakeFiles/ursa_sim.dir/sim/simulator.cc.o.d"
  "libursa_sim.a"
  "libursa_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ursa_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
