# Empty compiler generated dependencies file for ursa_common.
# This may be replaced when dependencies are built.
