file(REMOVE_RECURSE
  "libursa_common.a"
)
