file(REMOVE_RECURSE
  "CMakeFiles/ursa_common.dir/common/crc32.cc.o"
  "CMakeFiles/ursa_common.dir/common/crc32.cc.o.d"
  "CMakeFiles/ursa_common.dir/common/histogram.cc.o"
  "CMakeFiles/ursa_common.dir/common/histogram.cc.o.d"
  "CMakeFiles/ursa_common.dir/common/logging.cc.o"
  "CMakeFiles/ursa_common.dir/common/logging.cc.o.d"
  "CMakeFiles/ursa_common.dir/common/status.cc.o"
  "CMakeFiles/ursa_common.dir/common/status.cc.o.d"
  "libursa_common.a"
  "libursa_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ursa_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
