file(REMOVE_RECURSE
  "libursa_storage.a"
)
