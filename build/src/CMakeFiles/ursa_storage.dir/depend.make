# Empty dependencies file for ursa_storage.
# This may be replaced when dependencies are built.
