file(REMOVE_RECURSE
  "CMakeFiles/ursa_storage.dir/storage/chunk_store.cc.o"
  "CMakeFiles/ursa_storage.dir/storage/chunk_store.cc.o.d"
  "CMakeFiles/ursa_storage.dir/storage/hdd_model.cc.o"
  "CMakeFiles/ursa_storage.dir/storage/hdd_model.cc.o.d"
  "CMakeFiles/ursa_storage.dir/storage/mem_device.cc.o"
  "CMakeFiles/ursa_storage.dir/storage/mem_device.cc.o.d"
  "CMakeFiles/ursa_storage.dir/storage/ssd_model.cc.o"
  "CMakeFiles/ursa_storage.dir/storage/ssd_model.cc.o.d"
  "libursa_storage.a"
  "libursa_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ursa_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
