file(REMOVE_RECURSE
  "libursa_net.a"
)
