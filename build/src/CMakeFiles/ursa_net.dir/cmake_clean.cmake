file(REMOVE_RECURSE
  "CMakeFiles/ursa_net.dir/net/message.cc.o"
  "CMakeFiles/ursa_net.dir/net/message.cc.o.d"
  "CMakeFiles/ursa_net.dir/net/rpc.cc.o"
  "CMakeFiles/ursa_net.dir/net/rpc.cc.o.d"
  "CMakeFiles/ursa_net.dir/net/transport.cc.o"
  "CMakeFiles/ursa_net.dir/net/transport.cc.o.d"
  "libursa_net.a"
  "libursa_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ursa_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
