# Empty compiler generated dependencies file for ursa_net.
# This may be replaced when dependencies are built.
