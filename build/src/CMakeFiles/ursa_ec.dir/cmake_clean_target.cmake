file(REMOVE_RECURSE
  "libursa_ec.a"
)
