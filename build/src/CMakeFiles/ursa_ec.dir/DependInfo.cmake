
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ec/ec_stripe_store.cc" "src/CMakeFiles/ursa_ec.dir/ec/ec_stripe_store.cc.o" "gcc" "src/CMakeFiles/ursa_ec.dir/ec/ec_stripe_store.cc.o.d"
  "/root/repo/src/ec/gf256.cc" "src/CMakeFiles/ursa_ec.dir/ec/gf256.cc.o" "gcc" "src/CMakeFiles/ursa_ec.dir/ec/gf256.cc.o.d"
  "/root/repo/src/ec/reed_solomon.cc" "src/CMakeFiles/ursa_ec.dir/ec/reed_solomon.cc.o" "gcc" "src/CMakeFiles/ursa_ec.dir/ec/reed_solomon.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ursa_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
