# Empty compiler generated dependencies file for ursa_ec.
# This may be replaced when dependencies are built.
