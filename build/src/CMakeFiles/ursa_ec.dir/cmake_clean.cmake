file(REMOVE_RECURSE
  "CMakeFiles/ursa_ec.dir/ec/ec_stripe_store.cc.o"
  "CMakeFiles/ursa_ec.dir/ec/ec_stripe_store.cc.o.d"
  "CMakeFiles/ursa_ec.dir/ec/gf256.cc.o"
  "CMakeFiles/ursa_ec.dir/ec/gf256.cc.o.d"
  "CMakeFiles/ursa_ec.dir/ec/reed_solomon.cc.o"
  "CMakeFiles/ursa_ec.dir/ec/reed_solomon.cc.o.d"
  "libursa_ec.a"
  "libursa_ec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ursa_ec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
