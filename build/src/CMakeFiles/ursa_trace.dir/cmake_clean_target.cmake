file(REMOVE_RECURSE
  "libursa_trace.a"
)
