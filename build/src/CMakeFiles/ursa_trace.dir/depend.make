# Empty dependencies file for ursa_trace.
# This may be replaced when dependencies are built.
