file(REMOVE_RECURSE
  "CMakeFiles/ursa_trace.dir/trace/cache_sim.cc.o"
  "CMakeFiles/ursa_trace.dir/trace/cache_sim.cc.o.d"
  "CMakeFiles/ursa_trace.dir/trace/msr_generator.cc.o"
  "CMakeFiles/ursa_trace.dir/trace/msr_generator.cc.o.d"
  "CMakeFiles/ursa_trace.dir/trace/workload.cc.o"
  "CMakeFiles/ursa_trace.dir/trace/workload.cc.o.d"
  "libursa_trace.a"
  "libursa_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ursa_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
