
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/cache_sim.cc" "src/CMakeFiles/ursa_trace.dir/trace/cache_sim.cc.o" "gcc" "src/CMakeFiles/ursa_trace.dir/trace/cache_sim.cc.o.d"
  "/root/repo/src/trace/msr_generator.cc" "src/CMakeFiles/ursa_trace.dir/trace/msr_generator.cc.o" "gcc" "src/CMakeFiles/ursa_trace.dir/trace/msr_generator.cc.o.d"
  "/root/repo/src/trace/workload.cc" "src/CMakeFiles/ursa_trace.dir/trace/workload.cc.o" "gcc" "src/CMakeFiles/ursa_trace.dir/trace/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ursa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
