file(REMOVE_RECURSE
  "libursa_cluster.a"
)
