
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/chunk_server.cc" "src/CMakeFiles/ursa_cluster.dir/cluster/chunk_server.cc.o" "gcc" "src/CMakeFiles/ursa_cluster.dir/cluster/chunk_server.cc.o.d"
  "/root/repo/src/cluster/cluster.cc" "src/CMakeFiles/ursa_cluster.dir/cluster/cluster.cc.o" "gcc" "src/CMakeFiles/ursa_cluster.dir/cluster/cluster.cc.o.d"
  "/root/repo/src/cluster/failure_injector.cc" "src/CMakeFiles/ursa_cluster.dir/cluster/failure_injector.cc.o" "gcc" "src/CMakeFiles/ursa_cluster.dir/cluster/failure_injector.cc.o.d"
  "/root/repo/src/cluster/machine.cc" "src/CMakeFiles/ursa_cluster.dir/cluster/machine.cc.o" "gcc" "src/CMakeFiles/ursa_cluster.dir/cluster/machine.cc.o.d"
  "/root/repo/src/cluster/master.cc" "src/CMakeFiles/ursa_cluster.dir/cluster/master.cc.o" "gcc" "src/CMakeFiles/ursa_cluster.dir/cluster/master.cc.o.d"
  "/root/repo/src/cluster/placement.cc" "src/CMakeFiles/ursa_cluster.dir/cluster/placement.cc.o" "gcc" "src/CMakeFiles/ursa_cluster.dir/cluster/placement.cc.o.d"
  "/root/repo/src/cluster/upgrade.cc" "src/CMakeFiles/ursa_cluster.dir/cluster/upgrade.cc.o" "gcc" "src/CMakeFiles/ursa_cluster.dir/cluster/upgrade.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ursa_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_journal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
