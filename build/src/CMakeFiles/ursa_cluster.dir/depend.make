# Empty dependencies file for ursa_cluster.
# This may be replaced when dependencies are built.
