file(REMOVE_RECURSE
  "CMakeFiles/ursa_cluster.dir/cluster/chunk_server.cc.o"
  "CMakeFiles/ursa_cluster.dir/cluster/chunk_server.cc.o.d"
  "CMakeFiles/ursa_cluster.dir/cluster/cluster.cc.o"
  "CMakeFiles/ursa_cluster.dir/cluster/cluster.cc.o.d"
  "CMakeFiles/ursa_cluster.dir/cluster/failure_injector.cc.o"
  "CMakeFiles/ursa_cluster.dir/cluster/failure_injector.cc.o.d"
  "CMakeFiles/ursa_cluster.dir/cluster/machine.cc.o"
  "CMakeFiles/ursa_cluster.dir/cluster/machine.cc.o.d"
  "CMakeFiles/ursa_cluster.dir/cluster/master.cc.o"
  "CMakeFiles/ursa_cluster.dir/cluster/master.cc.o.d"
  "CMakeFiles/ursa_cluster.dir/cluster/placement.cc.o"
  "CMakeFiles/ursa_cluster.dir/cluster/placement.cc.o.d"
  "CMakeFiles/ursa_cluster.dir/cluster/upgrade.cc.o"
  "CMakeFiles/ursa_cluster.dir/cluster/upgrade.cc.o.d"
  "libursa_cluster.a"
  "libursa_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ursa_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
