file(REMOVE_RECURSE
  "CMakeFiles/ursa_index.dir/index/flsm_index.cc.o"
  "CMakeFiles/ursa_index.dir/index/flsm_index.cc.o.d"
  "CMakeFiles/ursa_index.dir/index/range_index.cc.o"
  "CMakeFiles/ursa_index.dir/index/range_index.cc.o.d"
  "libursa_index.a"
  "libursa_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ursa_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
