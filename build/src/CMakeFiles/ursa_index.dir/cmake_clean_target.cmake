file(REMOVE_RECURSE
  "libursa_index.a"
)
