# Empty compiler generated dependencies file for ursa_index.
# This may be replaced when dependencies are built.
