file(REMOVE_RECURSE
  "CMakeFiles/ursa_core.dir/core/metrics.cc.o"
  "CMakeFiles/ursa_core.dir/core/metrics.cc.o.d"
  "CMakeFiles/ursa_core.dir/core/params.cc.o"
  "CMakeFiles/ursa_core.dir/core/params.cc.o.d"
  "CMakeFiles/ursa_core.dir/core/system.cc.o"
  "CMakeFiles/ursa_core.dir/core/system.cc.o.d"
  "libursa_core.a"
  "libursa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ursa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
