# Empty dependencies file for kv_store_on_ursa.
# This may be replaced when dependencies are built.
