file(REMOVE_RECURSE
  "CMakeFiles/kv_store_on_ursa.dir/kv_store_on_ursa.cpp.o"
  "CMakeFiles/kv_store_on_ursa.dir/kv_store_on_ursa.cpp.o.d"
  "kv_store_on_ursa"
  "kv_store_on_ursa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_store_on_ursa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
