# Empty dependencies file for hybrid_vs_ssd.
# This may be replaced when dependencies are built.
