file(REMOVE_RECURSE
  "CMakeFiles/hybrid_vs_ssd.dir/hybrid_vs_ssd.cpp.o"
  "CMakeFiles/hybrid_vs_ssd.dir/hybrid_vs_ssd.cpp.o.d"
  "hybrid_vs_ssd"
  "hybrid_vs_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_vs_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
