# Empty dependencies file for vm_via_nbd.
# This may be replaced when dependencies are built.
