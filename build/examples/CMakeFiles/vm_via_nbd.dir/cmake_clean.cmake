file(REMOVE_RECURSE
  "CMakeFiles/vm_via_nbd.dir/vm_via_nbd.cpp.o"
  "CMakeFiles/vm_via_nbd.dir/vm_via_nbd.cpp.o.d"
  "vm_via_nbd"
  "vm_via_nbd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_via_nbd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
