# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_kv_store "/root/repo/build/examples/kv_store_on_ursa")
set_tests_properties(example_kv_store PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_failover_drill "/root/repo/build/examples/failover_drill")
set_tests_properties(example_failover_drill PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_snapshot_backup "/root/repo/build/examples/snapshot_backup")
set_tests_properties(example_snapshot_backup PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_vm_via_nbd "/root/repo/build/examples/vm_via_nbd")
set_tests_properties(example_vm_via_nbd PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_explorer "/root/repo/build/examples/trace_explorer")
set_tests_properties(example_trace_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
