# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/range_index_test[1]_include.cmake")
include("/root/repo/build/tests/flsm_index_test[1]_include.cmake")
include("/root/repo/build/tests/journal_test[1]_include.cmake")
include("/root/repo/build/tests/journal_manager_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/chunk_server_test[1]_include.cmake")
include("/root/repo/build/tests/client_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/system_test[1]_include.cmake")
include("/root/repo/build/tests/upgrade_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/layers_test[1]_include.cmake")
include("/root/repo/build/tests/master_metrics_test[1]_include.cmake")
include("/root/repo/build/tests/ec_test[1]_include.cmake")
include("/root/repo/build/tests/linearizability_test[1]_include.cmake")
include("/root/repo/build/tests/nbd_test[1]_include.cmake")
