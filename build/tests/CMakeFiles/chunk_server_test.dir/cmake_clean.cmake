file(REMOVE_RECURSE
  "CMakeFiles/chunk_server_test.dir/chunk_server_test.cc.o"
  "CMakeFiles/chunk_server_test.dir/chunk_server_test.cc.o.d"
  "chunk_server_test"
  "chunk_server_test.pdb"
  "chunk_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chunk_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
