
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ec_test.cc" "tests/CMakeFiles/ec_test.dir/ec_test.cc.o" "gcc" "tests/CMakeFiles/ec_test.dir/ec_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ursa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_client.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_journal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
