file(REMOVE_RECURSE
  "CMakeFiles/range_index_test.dir/range_index_test.cc.o"
  "CMakeFiles/range_index_test.dir/range_index_test.cc.o.d"
  "range_index_test"
  "range_index_test.pdb"
  "range_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/range_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
