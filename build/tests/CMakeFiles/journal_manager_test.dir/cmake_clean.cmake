file(REMOVE_RECURSE
  "CMakeFiles/journal_manager_test.dir/journal_manager_test.cc.o"
  "CMakeFiles/journal_manager_test.dir/journal_manager_test.cc.o.d"
  "journal_manager_test"
  "journal_manager_test.pdb"
  "journal_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/journal_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
