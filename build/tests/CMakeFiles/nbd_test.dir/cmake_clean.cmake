file(REMOVE_RECURSE
  "CMakeFiles/nbd_test.dir/nbd_test.cc.o"
  "CMakeFiles/nbd_test.dir/nbd_test.cc.o.d"
  "nbd_test"
  "nbd_test.pdb"
  "nbd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
