# Empty dependencies file for nbd_test.
# This may be replaced when dependencies are built.
