file(REMOVE_RECURSE
  "CMakeFiles/master_metrics_test.dir/master_metrics_test.cc.o"
  "CMakeFiles/master_metrics_test.dir/master_metrics_test.cc.o.d"
  "master_metrics_test"
  "master_metrics_test.pdb"
  "master_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/master_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
