# Empty dependencies file for master_metrics_test.
# This may be replaced when dependencies are built.
