# Empty compiler generated dependencies file for flsm_index_test.
# This may be replaced when dependencies are built.
