file(REMOVE_RECURSE
  "CMakeFiles/flsm_index_test.dir/flsm_index_test.cc.o"
  "CMakeFiles/flsm_index_test.dir/flsm_index_test.cc.o.d"
  "flsm_index_test"
  "flsm_index_test.pdb"
  "flsm_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flsm_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
