// Chaos smoke driver: runs the seeded chaos harness over a seed list and
// exits nonzero if any seed fails its safety checks (linearizability,
// replica convergence, corruption repair). CI runs this on fixed seeds under
// sanitizers; locally it is the reproduction tool for a failing seed:
//
//   chaos_smoke --seeds=42          # replay one seed, print its fault trace
//   chaos_smoke --seeds=1,2,3 -v    # sweep, verbose per-seed summaries
//   chaos_smoke --seeds=7 --qos     # same faults with the QoS scheduler on
//   chaos_smoke --health            # sweep with health scoring on (verdicts
//                                   # may only land on injected devices),
//                                   # then the gray-disk detection drill
//   chaos_smoke --scrub             # sweep with background scrubbing on,
//                                   # then the latent-corruption drill (cold
//                                   # at-rest flips must be found and healed
//                                   # by the scrubber, never by a client)
//   chaos_smoke --tier              # sweep with tiered placement on (EC
//                                   # migrations race the fault soup), then
//                                   # the tiering drill (demote wave,
//                                   # degraded reads, rebuild, write-promote)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/chaos/chaos_runner.h"

namespace {

std::vector<uint64_t> ParseSeeds(const std::string& list) {
  std::vector<uint64_t> seeds;
  size_t pos = 0;
  while (pos < list.size()) {
    size_t comma = list.find(',', pos);
    if (comma == std::string::npos) {
      comma = list.size();
    }
    seeds.push_back(std::strtoull(list.substr(pos, comma - pos).c_str(), nullptr, 10));
    pos = comma + 1;
  }
  return seeds;
}

// Health scoring tuned to chaos scale: the default production windows (2 s
// horizon) outlast the whole fault window, so drills use a 600 ms horizon
// and a 75 ms cadence instead.
ursa::obs::HealthConfig ChaosHealthConfig() {
  ursa::obs::HealthConfig h;
  h.enabled = true;
  h.window_length = ursa::msec(150);
  h.num_windows = 4;
  h.check_interval = ursa::msec(75);
  h.min_samples = 12;
  h.outlier_ratio = 3.0;
  h.outlier_floor = ursa::usec(500);
  h.suspect_after = 2;
  h.degrade_after = 4;
  h.clear_after = 4;
  return h;
}

// The detection drill: one long gray-slow disk episode under steady traffic,
// no other fault types. The episode outlives the workload, so the run must
// END with the device flagged and its server demoted — a detector that
// flickers or never fires fails the leg.
int RunHealthDrill(uint64_t seed, bool verbose, const std::string& json_path) {
  ursa::chaos::ChaosPlan plan;
  plan.seed = seed;
  plan.ops = 4000;
  plan.fault_window = ursa::msec(300);   // the fault starts early...
  plan.workload_tail = ursa::msec(1700);  // ...and traffic keeps feeding digests
  plan.min_fault_len = ursa::sec(2);
  plan.max_fault_len = ursa::sec(2);
  plan.net_faults = 0;
  plan.partitions = 0;
  plan.disk_faults = 1;
  plan.stuck_faults = 0;
  plan.crashes = 0;
  plan.bit_flips = 0;
  plan.cluster.health = ChaosHealthConfig();

  ursa::chaos::ChaosReport report = ursa::chaos::RunChaos(plan);
  if (!json_path.empty() && !report.health_json.empty()) {
    std::ofstream out(json_path);
    out << report.health_json << "\n";
  }

  int failures = 0;
  auto expect = [&failures](bool cond, const char* what) {
    std::printf("  drill: %-58s %s\n", what, cond ? "OK" : "FAIL");
    failures += cond ? 0 : 1;
  };
  expect(report.ok, "safety checks hold during detection and demotion");
  expect(report.health_demotions >= 1, "gray disk was demoted");
  expect(report.degraded_devices.size() == 1, "exactly the injected device degraded");
  expect(!report.demoted_at_end.empty(), "run ends with the slow device still demoted");
  if (!report.ok || verbose || failures > 0) {
    std::printf("%s\n", report.Summary().c_str());
  }
  return failures;
}

// Scrub tuned to chaos scale: production sweeps take minutes; the drill needs
// a few sweeps inside a couple of simulated seconds.
ursa::scrub::ScrubConfig ChaosScrubConfig() {
  ursa::scrub::ScrubConfig s;
  s.enabled = true;
  s.sweep_interval = ursa::msec(250);
  s.tick_interval = ursa::msec(5);
  s.read_bytes = 256 * ursa::kKiB;
  s.per_server_concurrent = 1;
  s.max_concurrent = 4;
  return s;
}

// The latent-corruption drill: flip bytes in at-rest cold blocks no client
// will ever read, then require the background scrubber to detect every flip
// within one sweep period, repair it end to end, and keep the damage
// invisible to the (read-only) foreground workload.
int RunScrubDrill(uint64_t seed, bool verbose, const std::string& json_path) {
  ursa::chaos::ChaosPlan plan;
  plan.seed = seed;
  plan.cluster.scrub = ChaosScrubConfig();
  ursa::chaos::ChaosReport report = ursa::chaos::RunLatentScrub(plan);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\"seed\": " << report.seed << ", \"ok\": " << (report.ok ? "true" : "false")
        << ", \"latent_flips\": " << report.latent_flips
        << ", \"scrub_detected\": " << report.scrub_detected
        << ", \"scrub_repaired\": " << report.scrub_repaired
        << ", \"client_integrity_errors\": " << report.client_integrity_errors
        << ", \"mttd_us\": " << report.scrub_mttd_us
        << ", \"sweep_period_us\": " << report.sweep_period_us << "}\n";
  }

  int failures = 0;
  auto expect = [&failures](bool cond, const char* what) {
    std::printf("  scrub drill: %-52s %s\n", what, cond ? "OK" : "FAIL");
    failures += cond ? 0 : 1;
  };
  expect(report.latent_flips >= 3, "latent flips landed in cold at-rest data");
  expect(report.scrub_detected >= report.latent_flips, "scrubber detected every flip");
  expect(report.scrub_repaired >= report.scrub_detected, "every detection was repaired");
  expect(report.client_integrity_errors == 0, "zero client-visible corruption errors");
  expect(report.ok, "detection within one sweep period; bytes verified");
  if (!report.ok || verbose || failures > 0) {
    std::printf("%s\n", report.Summary().c_str());
  }
  return failures;
}

// Tiering tuned to chaos scale: production cold-ages are minutes; the drill
// needs demotions within a couple of simulated seconds of idleness, and the
// sweep needs migrations racing the fault soup inside the fault window.
ursa::tier::TierConfig ChaosTierConfig() {
  ursa::tier::TierConfig t;
  t.enabled = true;
  t.ec_k = 4;
  t.ec_m = 2;
  t.heat_half_life = ursa::msec(100);
  t.scan_interval = ursa::msec(100);
  t.demote_max_heat = 2.0;
  t.cold_age = ursa::msec(250);
  t.promote_heat = 16.0;
  t.max_concurrent = 2;
  return t;
}

// The tiering drill: demote wave on an idle disk (capacity factor must fall
// to (k+m)/k), byte-correct degraded reads with a shard server down, a
// report-driven stripe rebuild, a write into a cold chunk acked on
// speculative replica-quorum durability and converging to replication, and
// crashes injected mid-speculation (a replica target, then the master —
// whose restore must resume the back-fill from checkpointed metadata).
int RunTierDrill(uint64_t seed, bool verbose, const std::string& json_path) {
  ursa::chaos::ChaosPlan plan;
  plan.seed = seed;
  plan.cluster.tier = ChaosTierConfig();
  ursa::chaos::ChaosReport report = ursa::chaos::RunTierDrill(plan);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\"seed\": " << report.seed << ", \"ok\": " << (report.ok ? "true" : "false")
        << ", \"demotions\": " << report.tier_demotions
        << ", \"write_promotions\": " << report.tier_write_promotions
        << ", \"spec_promotions\": " << report.tier_spec_promotions
        << ", \"spec_resumes\": " << report.tier_spec_resumes
        << ", \"spec_retries\": " << report.tier_spec_retries
        << ", \"shard_repairs\": " << report.tier_shard_repairs
        << ", \"degraded_reads\": " << report.tier_degraded_reads
        << ", \"capacity_factor_before\": " << report.capacity_factor_before
        << ", \"capacity_factor_after\": " << report.capacity_factor_after << "}\n";
  }

  int failures = 0;
  auto expect = [&failures](bool cond, const char* what) {
    std::printf("  tier drill: %-53s %s\n", what, cond ? "OK" : "FAIL");
    failures += cond ? 0 : 1;
  };
  expect(report.tier_demotions >= 4, "idle chunks demoted to EC stripes");
  expect(report.capacity_factor_after < report.capacity_factor_before,
         "capacity factor dropped toward (k+m)/k");
  expect(report.tier_degraded_reads >= 1, "degraded read reconstructed the lost shard");
  expect(report.tier_shard_repairs >= 1, "failure report drove a stripe rebuild");
  expect(report.tier_write_promotions >= 1, "cold writes promoted their chunks");
  expect(report.tier_spec_promotions >= 1, "speculative promotion served a cold write");
  expect(report.tier_spec_resumes >= 1, "restored master resumed the back-fill");
  expect(report.ok, "all bytes correct; no safety violations");
  if (!report.ok || verbose || failures > 0) {
    std::printf("%s\n", report.Summary().c_str());
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<uint64_t> seeds = {1, 2, 3};
  bool verbose = false;
  bool qos = false;
  bool health = false;
  bool scrub = false;
  bool tier = false;
  std::string health_json;
  std::string scrub_json;
  std::string tier_json;
  // Default drill seed picked so the episode lands on an SSD: backup HDDs
  // journal to SSD regions, so HDDs see almost no foreground traffic in the
  // hybrid cluster and are (correctly) invisible to the scorer.
  uint64_t drill_seed = 1;
  int ops = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--seeds=", 8) == 0) {
      seeds = ParseSeeds(arg + 8);
    } else if (std::strncmp(arg, "--ops=", 6) == 0) {
      ops = std::atoi(arg + 6);
    } else if (std::strcmp(arg, "--qos") == 0) {
      qos = true;
    } else if (std::strcmp(arg, "--health") == 0) {
      health = true;
    } else if (std::strcmp(arg, "--scrub") == 0) {
      scrub = true;
    } else if (std::strcmp(arg, "--tier") == 0) {
      tier = true;
    } else if (std::strncmp(arg, "--health-json=", 14) == 0) {
      health_json = arg + 14;
    } else if (std::strncmp(arg, "--scrub-json=", 13) == 0) {
      scrub_json = arg + 13;
    } else if (std::strncmp(arg, "--tier-json=", 12) == 0) {
      tier_json = arg + 12;
    } else if (std::strncmp(arg, "--drill-seed=", 13) == 0) {
      drill_seed = std::strtoull(arg + 13, nullptr, 10);
    } else if (std::strcmp(arg, "-v") == 0 || std::strcmp(arg, "--verbose") == 0) {
      verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seeds=a,b,c] [--ops=N] [--qos] [--health] [--scrub] [--tier] "
                   "[--health-json=path] [--scrub-json=path] [--tier-json=path] [-v]\n",
                   argv[0]);
      return 2;
    }
  }

  int failures = 0;
  for (uint64_t seed : seeds) {
    ursa::chaos::ChaosPlan plan;
    plan.seed = seed;
    plan.cluster.qos.enabled = qos;
    if (health) {
      // Health on: the runner additionally fails any seed whose scorer
      // degrades a device the engine never gray-faulted.
      plan.cluster.health = ChaosHealthConfig();
    }
    if (scrub) {
      // Scrub on: the full fault soup (crashes, partitions, gray disks, bit
      // flips) runs with background sweeps and checksum ledgers active — the
      // safety checks must hold with the scrubber competing for the devices.
      plan.cluster.scrub = ChaosScrubConfig();
    }
    if (tier) {
      // Tier on: migrations race the fault soup. Chunks idle long enough
      // demote mid-run; workload writes into them must promote-before-ack
      // while crashes and partitions land — linearizability still checked.
      plan.cluster.tier = ChaosTierConfig();
    }
    if (ops > 0) {
      plan.ops = ops;
    }
    ursa::chaos::ChaosReport report = ursa::chaos::RunChaos(plan);
    if (!report.ok || verbose) {
      std::printf("%s\n", report.Summary().c_str());
    }
    failures += report.ok ? 0 : 1;
  }
  std::printf("chaos smoke: %zu seeds, %d failed\n", seeds.size(), failures);

  if (health) {
    failures += RunHealthDrill(drill_seed, verbose, health_json);
  }
  if (scrub) {
    failures += RunScrubDrill(drill_seed, verbose, scrub_json);
  }
  if (tier) {
    failures += RunTierDrill(drill_seed, verbose, tier_json);
  }
  return failures == 0 ? 0 : 1;
}
