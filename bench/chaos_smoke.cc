// Chaos smoke driver: runs the seeded chaos harness over a seed list and
// exits nonzero if any seed fails its safety checks (linearizability,
// replica convergence, corruption repair). CI runs this on fixed seeds under
// sanitizers; locally it is the reproduction tool for a failing seed:
//
//   chaos_smoke --seeds=42          # replay one seed, print its fault trace
//   chaos_smoke --seeds=1,2,3 -v    # sweep, verbose per-seed summaries
//   chaos_smoke --seeds=7 --qos     # same faults with the QoS scheduler on
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/chaos/chaos_runner.h"

namespace {

std::vector<uint64_t> ParseSeeds(const std::string& list) {
  std::vector<uint64_t> seeds;
  size_t pos = 0;
  while (pos < list.size()) {
    size_t comma = list.find(',', pos);
    if (comma == std::string::npos) {
      comma = list.size();
    }
    seeds.push_back(std::strtoull(list.substr(pos, comma - pos).c_str(), nullptr, 10));
    pos = comma + 1;
  }
  return seeds;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<uint64_t> seeds = {1, 2, 3};
  bool verbose = false;
  bool qos = false;
  int ops = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--seeds=", 8) == 0) {
      seeds = ParseSeeds(arg + 8);
    } else if (std::strncmp(arg, "--ops=", 6) == 0) {
      ops = std::atoi(arg + 6);
    } else if (std::strcmp(arg, "--qos") == 0) {
      qos = true;
    } else if (std::strcmp(arg, "-v") == 0 || std::strcmp(arg, "--verbose") == 0) {
      verbose = true;
    } else {
      std::fprintf(stderr, "usage: %s [--seeds=a,b,c] [--ops=N] [--qos] [-v]\n", argv[0]);
      return 2;
    }
  }

  int failures = 0;
  for (uint64_t seed : seeds) {
    ursa::chaos::ChaosPlan plan;
    plan.seed = seed;
    plan.cluster.qos.enabled = qos;
    if (ops > 0) {
      plan.ops = ops;
    }
    ursa::chaos::ChaosReport report = ursa::chaos::RunChaos(plan);
    if (!report.ok || verbose) {
      std::printf("%s\n", report.Summary().c_str());
    }
    failures += report.ok ? 0 : 1;
  }
  std::printf("chaos smoke: %zu seeds, %d failed\n", seeds.size(), failures);
  return failures == 0 ? 0 : 1;
}
