// Tiered-placement benchmark (DESIGN.md §13): what the EC cold tier buys in
// capacity, what a demotion wave costs the foreground tail, and what a
// write into a cold chunk pays to promote back.
//
// Phase A (capacity + correctness, hybrid cluster): a disk is materialized,
// journal replay drained, and the workload goes idle. The heat-driven
// migrator must demote every chunk to a 4+2 stripe, dropping the capacity
// factor from the replication factor (3.0) to (k+m)/k (1.5). Every byte
// must then read back through the shard path, and a 4 KiB write into a cold
// chunk must ack once durable on a replica quorum (speculative promotion,
// DESIGN.md §13.6) and then converge to clean replication with the byte
// intact — the measured ack latency is the cost of writing cold data.
//
// Phase A2 (speculation payoff): the same cold 4 KiB write measured twice
// on identical beds, speculative promotion on vs. off (reconstruct-first).
// The speculative ack must come in at least 2x faster: it rides a replica
// quorum of the new bytes while the k-shard reconstruct happens behind it.
//
// Phase B (foreground overhead, hybrid cluster + QoS): two identical beds
// run the same mixed 4K workload on a hot disk; the tier-on bed also holds
// a second, idle disk whose chunks the migrator demotes during the measured
// window. Demotion transfers run under ServiceClass::kScrub and take
// admission slots, so the gate bounds the foreground read p99 at 2x the
// quiescent arm — the wave must ride idle capacity, not tax the tail.
//
// Gates (bench/bench_baselines.json, "tiering"): wave demoted every chunk,
// capacity factor halved, bytes intact through the shard path, cold write
// acked and converged to replication, speculative ack >= 2x faster than
// reconstruct-first, foreground p99 within 2x under the wave.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/core/system.h"

using namespace ursa;

namespace {

constexpr double kFgP99Bound = 2.0;  // tier-on read p99 <= 2x quiescent

// Tiering tuned to bench scale: production cold-ages are minutes; the bench
// needs a full demotion wave inside a couple of simulated seconds. Policy
// promotion is disabled (promote_heat unreachable) so the only promotions
// are write-triggered — Phase A's read-back must NOT re-replicate.
tier::TierConfig BenchTierConfig() {
  tier::TierConfig t;
  t.enabled = true;
  t.ec_k = 4;
  t.ec_m = 2;
  t.heat_half_life = msec(100);
  t.scan_interval = msec(100);
  t.demote_max_heat = 2.0;
  t.cold_age = msec(250);
  t.promote_heat = 1e18;
  t.max_concurrent = 2;
  return t;
}

std::vector<uint8_t> Pattern(size_t length, uint64_t seed) {
  std::vector<uint8_t> out(length);
  uint64_t x = seed * 0x9e3779b97f4a7c15ULL + 1;
  for (size_t i = 0; i < length; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    out[i] = static_cast<uint8_t>(x);
  }
  return out;
}

void DrainReplay(core::TestBed& bed) {
  for (int i = 0; i < 500; ++i) {
    bool drained = true;
    for (journal::JournalManager* jm : bed.cluster().journal_managers()) {
      drained = drained && jm->ReplayDrained();
    }
    if (drained) {
      return;
    }
    bed.sim().RunUntil(bed.sim().Now() + msec(10));
  }
}

struct CapacityResult {
  bool wave_complete = false;       // every chunk demoted
  bool capacity_halved = false;     // physical/logical fell to (k+m)/k
  bool data_intact = false;         // full read-back matched through shards
  bool promote_acked = false;       // cold write acked in replicated form
  double factor_before = 0;
  double factor_after = 0;
  double wave_ms = -1;              // idle start -> last chunk demoted
  double promote_ack_us = -1;       // cold 4K write issue -> ack
};

CapacityResult RunCapacity() {
  core::SystemProfile profile = core::UrsaHybridProfile(3);
  profile.name = "tier-capacity";
  profile.cluster.chunk_size = 1 * kMiB;
  profile.cluster.tier = BenchTierConfig();
  core::TestBed bed(profile);
  auto& sim = bed.sim();
  auto& master = bed.cluster().master();

  constexpr uint64_t kDiskSize = 8 * kMiB;
  client::VirtualDisk* disk = bed.NewDisk(kDiskSize, 3, 1);
  auto data = Pattern(kDiskSize, 29);
  Status write_status = Internal("pending");
  bool write_done = false;
  disk->Write(0, data.size(), data.data(), [&](const Status& s) {
    write_status = s;
    write_done = true;
  });
  // Poll in small steps: an unconditional multi-second wait would let the
  // migrator start demoting before the "before" capacity factor is read.
  for (int i = 0; i < 4000 && !write_done; ++i) {
    sim.RunUntil(sim.Now() + msec(5));
  }
  URSA_CHECK(write_status.ok());

  CapacityResult out;
  const double logical = static_cast<double>(master.LogicalBytes());
  out.factor_before = static_cast<double>(master.PhysicalBytes()) / logical;
  DrainReplay(bed);

  const cluster::DiskMeta* meta = *master.GetDisk(1);
  auto all_ec = [&]() {
    for (const cluster::ChunkLayout& l : meta->chunks) {
      if (l.tier != cluster::ChunkTier::kEc) {
        return false;
      }
    }
    return true;
  };
  Nanos idle_start = sim.Now();
  Nanos deadline = sim.Now() + sec(20);
  while (!all_ec() && sim.Now() < deadline) {
    sim.RunUntil(sim.Now() + msec(10));
  }
  out.wave_complete = all_ec();
  out.factor_after = static_cast<double>(master.PhysicalBytes()) / logical;
  if (out.wave_complete) {
    out.wave_ms = ToMsec(sim.Now() - idle_start);
  }
  double ec_factor = static_cast<double>(profile.cluster.tier.ec_k + profile.cluster.tier.ec_m) /
                     static_cast<double>(profile.cluster.tier.ec_k);
  out.capacity_halved = out.wave_complete && out.factor_after <= ec_factor + 0.01;

  // Every byte must come back through the shard path (policy promotion is
  // off, so this read-back cannot quietly re-replicate its way to passing).
  std::vector<uint8_t> check(data.size(), 0xCD);
  Status read_status = Internal("pending");
  disk->Read(0, check.size(), check.data(), [&](const Status& s) { read_status = s; });
  sim.RunUntil(sim.Now() + sec(10));
  out.data_intact = read_status.ok() && check == data && all_ec() &&
                    disk->stats().ec_shard_reads > 0 && disk->stats().integrity_errors == 0;

  // A 4 KiB write into a cold chunk: the ack arrives once the bytes are
  // durable on a replica quorum (speculative promotion — the full promote
  // no longer sits in front of it), and the chunk must then converge to
  // clean replication with the patched byte intact.
  auto patch = Pattern(4 * kKiB, 31);
  Nanos issue = sim.Now();
  Nanos acked = -1;
  disk->Write(0, patch.size(), patch.data(), [&](const Status& s) {
    if (s.ok()) {
      acked = sim.Now();
    }
  });
  for (int i = 0; i < 4000 && acked < 0; ++i) {
    sim.RunUntil(sim.Now() + msec(5));
  }
  if (acked >= 0) {
    out.promote_ack_us = ToUsec(acked - issue);
  }
  // Convergence: the background back-fill retires the shards and the chunk
  // lands replicated. (It goes cold and may re-demote much later; the bound
  // here is far inside the re-demotion cold-age.)
  auto converged = [&]() {
    return meta->chunks[0].tier == cluster::ChunkTier::kReplicated &&
           !meta->chunks[0].speculating();
  };
  Nanos converge_deadline = sim.Now() + sec(10);
  while (!converged() && sim.Now() < converge_deadline) {
    sim.RunUntil(sim.Now() + msec(5));
  }
  // Capture NOW: the freshly promoted chunk goes cold again and re-demotes
  // within this config's cold-age, so a later converged() check would lie.
  bool converged_replicated = converged();
  std::vector<uint8_t> patched(patch.size(), 0xCD);
  Status patch_read = Internal("pending");
  disk->Read(0, patched.size(), patched.data(), [&](const Status& s) { patch_read = s; });
  sim.RunUntil(sim.Now() + sec(5));
  out.promote_acked = acked >= 0 && converged_replicated && patch_read.ok() &&
                      patched == patch && master.tier_stats().write_promotions >= 1;
  return out;
}

// Phase A2: ack latency of a 4 KiB write into a demoted chunk, with and
// without speculative promotion. Same bed geometry; the only difference is
// whether the ack waits for the full reconstruct-then-replicate promotion.
struct ColdWriteResult {
  bool ok = false;          // acked, converged to replication, byte-exact
  double ack_us = -1;
};

ColdWriteResult MeasureColdWriteAck(bool speculative) {
  core::SystemProfile profile = core::UrsaHybridProfile(3);
  profile.name = speculative ? "cold-write-spec" : "cold-write-full";
  profile.cluster.chunk_size = 1 * kMiB;
  profile.cluster.tier = BenchTierConfig();
  // Keep the migrator out of the measurement: the demotion is forced below,
  // and a long cold-age stops the wave from racing the measured write.
  profile.cluster.tier.cold_age = sec(30);
  profile.cluster.tier.speculative_promote = speculative;
  core::TestBed bed(profile);
  auto& sim = bed.sim();
  auto& master = bed.cluster().master();

  client::VirtualDisk* disk = bed.NewDisk(2 * kMiB, 3, 1);
  auto data = Pattern(1 * kMiB, 37);
  Status write_status = Internal("pending");
  bool write_done = false;
  disk->Write(0, data.size(), data.data(), [&](const Status& s) {
    write_status = s;
    write_done = true;
  });
  for (int i = 0; i < 4000 && !write_done; ++i) {
    sim.RunUntil(sim.Now() + msec(5));
  }
  URSA_CHECK(write_status.ok());
  DrainReplay(bed);

  const cluster::DiskMeta* meta = *master.GetDisk(1);
  Status demote_status = Internal("pending");
  master.DemoteChunkToEc(meta->chunks[0].chunk, 4, 2,
                         [&](const Status& s) { demote_status = s; });
  sim.RunUntil(sim.Now() + sec(10));
  URSA_CHECK(demote_status.ok());

  ColdWriteResult out;
  auto patch = Pattern(4 * kKiB, 41);
  Nanos issue = sim.Now();
  Nanos acked = -1;
  disk->Write(0, patch.size(), patch.data(), [&](const Status& s) {
    if (s.ok()) {
      acked = sim.Now();
    }
  });
  for (int i = 0; i < 4000 && acked < 0; ++i) {
    sim.RunUntil(sim.Now() + msec(5));
  }
  if (acked < 0) {
    return out;
  }
  out.ack_us = ToUsec(acked - issue);

  auto converged = [&]() {
    return meta->chunks[0].tier == cluster::ChunkTier::kReplicated &&
           !meta->chunks[0].speculating();
  };
  Nanos deadline = sim.Now() + sec(10);
  while (!converged() && sim.Now() < deadline) {
    sim.RunUntil(sim.Now() + msec(5));
  }
  std::vector<uint8_t> check(data.size(), 0xCD);
  Status read_status = Internal("pending");
  disk->Read(0, check.size(), check.data(), [&](const Status& s) { read_status = s; });
  sim.RunUntil(sim.Now() + sec(5));
  auto expected = data;
  std::copy(patch.begin(), patch.end(), expected.begin());
  out.ok = converged() && read_status.ok() && check == expected &&
           master.tier_stats().write_promotions >= 1;
  return out;
}

struct OverheadResult {
  double read_p99_us = 0;
  double write_p99_us = 0;
  uint64_t demotions = 0;  // migrations overlapping the measured run
};

// One Phase-B arm: the same hot-disk workload, with or without a cold disk
// demoting in the background.
OverheadResult RunOverheadMode(bool tier_enabled) {
  core::SystemProfile profile = core::UrsaHybridProfile(3);
  profile.name = tier_enabled ? "tier-on" : "tier-off";
  profile.cluster.qos.enabled = true;  // migration I/O rides the kScrub band
  profile.cluster.chunk_size = 1 * kMiB;
  if (tier_enabled) {
    profile.cluster.tier = BenchTierConfig();
  }
  core::TestBed bed(profile);
  auto& sim = bed.sim();

  client::VirtualDisk* fg = bed.NewDisk(64 * kMiB);
  client::VirtualDisk* cold = bed.NewDisk(16 * kMiB, 3, 1);

  // Materialize the cold disk, then leave it idle: its 16 chunks cross the
  // cold-age threshold during the measured window and demote while the
  // foreground workload runs. (With tier off it just sits there.)
  auto cold_bytes = Pattern(16 * kMiB, 43);
  Status cold_status = Internal("pending");
  bool cold_done = false;
  cold->Write(0, cold_bytes.size(), cold_bytes.data(), [&](const Status& s) {
    cold_status = s;
    cold_done = true;
  });
  for (int i = 0; i < 4000 && !cold_done; ++i) {
    sim.RunUntil(sim.Now() + msec(5));
  }
  URSA_CHECK(cold_status.ok());
  DrainReplay(bed);

  core::WorkloadSpec spec;
  spec.block_size = 4 * kKiB;
  spec.queue_depth = 8;
  spec.read_fraction = 0.7;

  // The cold chunks' heat decays below the demote threshold ~0.7 s after the
  // materialize, so the wave lands inside warmup + the measured window. The
  // gate below counts only migrations overlapping the run.
  uint64_t demotions_before =
      tier_enabled ? bed.cluster().master().tier_stats().demotions : 0;
  OverheadResult out;
  core::RunMetrics m = bed.RunWorkload(fg, spec, msec(500), sec(2), profile.name);
  out.read_p99_us = static_cast<double>(m.read_latency_us.Percentile(99));
  out.write_p99_us = static_cast<double>(m.write_latency_us.Percentile(99));
  if (tier_enabled) {
    out.demotions = bed.cluster().master().tier_stats().demotions - demotions_before;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Phase A: demotion wave, capacity factor, write-promote ===\n\n");
  CapacityResult cap = RunCapacity();
  std::printf("demote wave: %s (%.0f ms), capacity factor %.2f -> %.2f\n",
              cap.wave_complete ? "complete" : "INCOMPLETE", cap.wave_ms, cap.factor_before,
              cap.factor_after);
  std::printf("read-back through shards: %s\n", cap.data_intact ? "bytes intact" : "MISMATCH");
  std::printf("cold-write promote: %s (ack after %.0f us)\n",
              cap.promote_acked ? "acked and converged to replication" : "NOT CONVERGED",
              cap.promote_ack_us);

  std::printf("\n=== Phase A2: cold-write ack, speculative vs reconstruct-first ===\n\n");
  ColdWriteResult spec = MeasureColdWriteAck(/*speculative=*/true);
  ColdWriteResult full = MeasureColdWriteAck(/*speculative=*/false);
  double speedup = spec.ack_us > 0 ? full.ack_us / spec.ack_us : 0;
  std::printf("speculative:       %s, ack after %.0f us\n", spec.ok ? "converged" : "FAILED",
              spec.ack_us);
  std::printf("reconstruct-first: %s, ack after %.0f us\n", full.ok ? "converged" : "FAILED",
              full.ack_us);
  std::printf("speculation speedup: %.2fx (gate: >= 2x)\n", speedup);

  std::printf("\n=== Phase B: foreground tail during a demotion wave ===\n\n");
  OverheadResult off = RunOverheadMode(false);
  OverheadResult on = RunOverheadMode(true);
  core::Table table({"mode", "read p99 (us)", "write p99 (us)", "demotions"});
  table.AddRow({"tier-off", core::Table::Int(off.read_p99_us), core::Table::Int(off.write_p99_us),
                "-"});
  table.AddRow({"tier-on", core::Table::Int(on.read_p99_us), core::Table::Int(on.write_p99_us),
                core::Table::Int(static_cast<double>(on.demotions))});
  table.Print();

  double overhead = off.read_p99_us > 0 ? on.read_p99_us / off.read_p99_us : 0;
  std::printf("\nTier-on read p99 overhead: %.2fx (bound: <= %.2fx), %llu demotions in window\n",
              overhead, kFgP99Bound, static_cast<unsigned long long>(on.demotions));

  bool wave_ran = on.demotions >= 8;  // at least half the cold chunks moved
  bool fg_ok = overhead > 0 && overhead <= kFgP99Bound;
  bool spec_2x = spec.ok && full.ok && speedup >= 2.0;
  bool ok = cap.wave_complete && cap.capacity_halved && cap.data_intact && cap.promote_acked &&
            spec_2x && wave_ran && fg_ok;
  std::printf("\nTiering %s\n", ok ? "SHAPE-OK" : "SHAPE-MISMATCH");

  std::string json_path = core::MetricsJsonPath(argc, argv);
  if (json_path.empty()) {
    json_path = "BENCH_tiering.json";
  }
  std::ofstream os(json_path);
  os << "{\"bench\":\"tiering\""
     << ",\"wave_complete\":" << (cap.wave_complete ? 1 : 0)
     << ",\"capacity_factor_halved\":" << (cap.capacity_halved ? 1 : 0)
     << ",\"data_intact\":" << (cap.data_intact ? 1 : 0)
     << ",\"write_promote_acked\":" << (cap.promote_acked ? 1 : 0)
     << ",\"cold_write_spec_2x\":" << (spec_2x ? 1 : 0)
     << ",\"wave_overlapped_window\":" << (wave_ran ? 1 : 0)
     << ",\"fg_p99_within_2x\":" << (fg_ok ? 1 : 0)
     << ",\"_capacity_factor_before\":" << cap.factor_before
     << ",\"_capacity_factor_after\":" << cap.factor_after
     << ",\"_wave_ms\":" << cap.wave_ms
     << ",\"_promote_ack_us\":" << cap.promote_ack_us
     << ",\"_cold_write_ack_us_spec\":" << spec.ack_us
     << ",\"_cold_write_ack_us_full\":" << full.ack_us
     << ",\"_cold_write_speedup\":" << speedup
     << ",\"_fg_read_p99_us_off\":" << off.read_p99_us
     << ",\"_fg_read_p99_us_on\":" << on.read_p99_us
     << ",\"_fg_write_p99_us_off\":" << off.write_p99_us
     << ",\"_fg_write_p99_us_on\":" << on.write_p99_us
     << ",\"_overhead_ratio\":" << overhead
     << ",\"_demotions_in_window\":" << on.demotions << "}\n";
  std::printf("metrics written to %s\n", json_path.c_str());
  return 0;
}
