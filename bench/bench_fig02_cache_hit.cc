// Figure 2: read cache-hit ratio per MSR volume under an idealized
// write-back cache (unlimited size, infinite write-back speed).
//
// Paper result: 17 of the 36 volumes have read hit ratios below 75% even
// with an unlimited cache, because large amounts of blocks are read only
// once — the observation motivating the hybrid structure over SSD caching.
#include <algorithm>
#include <cstdio>
#include <set>

#include "src/core/metrics.h"
#include "src/trace/cache_sim.h"
#include "src/trace/msr_generator.h"

using namespace ursa;

int main() {
  std::printf("=== Figure 2: cache read-hit ratio (unlimited write-back cache) ===\n");
  std::printf("(paper: 17 of 36 traces below 75%% read hit)\n\n");

  constexpr size_t kOpsPerTrace = 60000;
  std::set<std::string> expected_low(trace::LowHitTraceNames().begin(),
                                     trace::LowHitTraceNames().end());

  core::Table table({"Trace", "Reads", "Hit %", "Low(<75%)", "Paper-low-set"});
  int low_count = 0;
  int agreement = 0;
  for (const trace::TraceProfile& profile : trace::MsrTraceProfiles()) {
    auto records = trace::SynthesizeTrace(profile, kOpsPerTrace, 77);
    trace::CacheSimResult result = trace::SimulateUnlimitedCache(records);
    double hit = 100.0 * result.ReadHitRatio();
    bool low = hit < 75.0;
    bool paper_low = expected_low.count(profile.name) > 0;
    low_count += low ? 1 : 0;
    agreement += (low == paper_low) ? 1 : 0;
    table.AddRow({profile.name, std::to_string(result.reads), core::Table::Num(hit, 1),
                  low ? "yes" : "no", paper_low ? "yes" : "no"});
  }
  table.Print();

  std::printf("\nVolumes below 75%% read hit: %d (paper: 17)\n", low_count);
  std::printf("Agreement with the paper's low-hit set: %d/36\n", agreement);
  std::printf("Fig2 %s\n", low_count >= 15 && low_count <= 19 ? "SHAPE-OK" : "SHAPE-MISMATCH");
  return 0;
}
