// Hot-path microbenchmarks for the data plane (real wall-clock, no sim):
//
//   1. CRC32C throughput per implementation (table / slicing-by-8 / SSE4.2
//      hardware) — the journaled write path hashes every payload twice
//      (append + replay verify), so this is pure data-plane overhead.
//   2. RangeIndex insert and query rates, allocating Query() vs the
//      allocation-free QueryTo() used by journal overlay reads.
//   3. Buffer pass-through: a payload crossing N hops as memcpy-per-hop vs a
//      ref-counted BufferView per hop (what the zero-copy write path does).
//   4. Simulator EventQueue: schedule/fire and schedule/cancel rates (every
//      simulated I/O, RPC, and timeout rides this queue).
//
// Emits BENCH_hotpath.json (or the --metrics-json=<path> override) for the
// CI bench-smoke regression gate.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/buffer.h"
#include "src/common/crc32.h"
#include "src/common/rng.h"
#include "src/core/metrics.h"
#include "src/index/range_index.h"
#include "src/sim/event_queue.h"

using namespace ursa;

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// ---- 1. CRC32C ----

struct CrcResult {
  const char* name;
  bool available;
  double gbps;
};

CrcResult BenchCrcImpl(Crc32cImpl impl, const char* name, const std::vector<uint8_t>& buf) {
  if (!Crc32cImplAvailable(impl)) {
    return {name, false, 0};
  }
  // Warm up, then time enough passes for a stable figure.
  volatile uint32_t sink = Crc32cWith(impl, buf.data(), buf.size());
  int passes = impl == Crc32cImpl::kTable ? 64 : 512;
  auto t0 = Clock::now();
  for (int i = 0; i < passes; ++i) {
    sink = Crc32cWith(impl, buf.data(), buf.size(), sink);
  }
  auto t1 = Clock::now();
  (void)sink;
  double bytes = static_cast<double>(buf.size()) * passes;
  return {name, true, bytes / Seconds(t0, t1) / 1e9};
}

// ---- 2. RangeIndex ----

struct IndexResult {
  double inserts_per_s;
  double query_per_s;
  double queryto_per_s;
};

IndexResult BenchIndex() {
  constexpr size_t kInserts = 400000;
  constexpr size_t kQueries = 200000;
  Rng rng(42);
  index::RangeIndex idx(/*merge_threshold=*/SIZE_MAX);
  struct Op {
    uint32_t offset, length;
    uint64_t j;
  };
  std::vector<Op> inserts(kInserts), queries(kQueries);
  for (auto& op : inserts) {
    op = {static_cast<uint32_t>(rng.Uniform((1u << 20) - 64)),
          static_cast<uint32_t>(rng.UniformRange(1, 64)), rng.Uniform(1u << 28)};
  }
  for (auto& op : queries) {
    op = {static_cast<uint32_t>(rng.Uniform((1u << 20) - 64)),
          static_cast<uint32_t>(rng.UniformRange(1, 64)), 0};
  }

  auto t0 = Clock::now();
  for (size_t i = 0; i < kInserts; ++i) {
    idx.Insert(inserts[i].offset, inserts[i].length, inserts[i].j);
    if (i == kInserts * 3 / 4) {
      idx.Compact();  // realistic two-level shape: most entries in the array
    }
  }
  auto t1 = Clock::now();
  double insert_rate = kInserts / Seconds(t0, t1);

  // Best of three passes per query loop: a single pass is ~tens of ms and
  // scheduler noise dominates run-to-run otherwise.
  volatile uint64_t sink = 0;
  double query_rate = 0;
  double queryto_rate = 0;
  index::SegmentVec out;
  for (int pass = 0; pass < 3; ++pass) {
    t0 = Clock::now();
    for (const Op& q : queries) {
      sink = sink + idx.Query(q.offset, q.length).size();
    }
    t1 = Clock::now();
    query_rate = std::max(query_rate, kQueries / Seconds(t0, t1));

    t0 = Clock::now();
    for (const Op& q : queries) {
      idx.QueryTo(q.offset, q.length, &out);
      sink = sink + out.size();
    }
    t1 = Clock::now();
    queryto_rate = std::max(queryto_rate, kQueries / Seconds(t0, t1));
  }
  (void)sink;
  return {insert_rate, query_rate, queryto_rate};
}

// ---- 3. Buffer pass-through ----

struct BufferResult {
  double copy_hops_per_s;   // memcpy-per-hop baseline
  double view_hops_per_s;   // ref-counted BufferView per hop
};

BufferResult BenchBuffer() {
  constexpr size_t kPayload = 64 * 1024;  // typical journaled backup write
  constexpr int kHops = 4;                // client -> server -> journal -> device
  constexpr int kRounds = 4000;
  std::vector<uint8_t> payload(kPayload, 0x5A);

  // Baseline: every hop copies the payload into a fresh vector (the old
  // data plane).
  volatile uint8_t sink = 0;
  auto t0 = Clock::now();
  for (int r = 0; r < kRounds; ++r) {
    std::vector<uint8_t> hop = payload;
    for (int h = 1; h < kHops; ++h) {
      std::vector<uint8_t> next = hop;
      hop.swap(next);
    }
    sink = static_cast<uint8_t>(sink + hop[r % kPayload]);
  }
  auto t1 = Clock::now();
  double copy_rate = static_cast<double>(kRounds) * kHops / Seconds(t0, t1);

  // Zero-copy: allocate once, then each hop takes a BufferView (refcount
  // bump + pointer/length copy).
  Buffer buf = Buffer::CopyOf(payload.data(), payload.size());
  t0 = Clock::now();
  for (int r = 0; r < kRounds; ++r) {
    BufferView hop = buf.View();
    for (int h = 1; h < kHops; ++h) {
      BufferView next = hop.Slice(0, hop.size());
      hop = next;
    }
    sink = static_cast<uint8_t>(sink + hop.data()[r % kPayload]);
  }
  t1 = Clock::now();
  double view_rate = static_cast<double>(kRounds) * kHops / Seconds(t0, t1);
  (void)sink;
  return {copy_rate, view_rate};
}

// ---- 4. EventQueue ----

struct EventResult {
  double fire_per_s;    // schedule + pop/invoke
  double cancel_per_s;  // schedule + cancel (tombstone path)
};

EventResult BenchEvents() {
  constexpr int kEvents = 2000000;
  sim::EventQueue q;
  volatile uint64_t counter = 0;

  auto t0 = Clock::now();
  for (int i = 0; i < kEvents; ++i) {
    q.Schedule(i, [&counter]() { counter = counter + 1; });
    if ((i & 7) == 7) {  // drain in batches so the heap stays shallow-ish
      while (!q.empty()) {
        Nanos when = 0;
        q.PopNext(&when)();
      }
    }
  }
  while (!q.empty()) {
    Nanos when = 0;
    q.PopNext(&when)();
  }
  auto t1 = Clock::now();
  double fire_rate = kEvents / Seconds(t0, t1);

  t0 = Clock::now();
  for (int i = 0; i < kEvents; ++i) {
    sim::EventId id = q.Schedule(i, [&counter]() { counter = counter + 1; });
    q.Cancel(id);
  }
  t1 = Clock::now();
  double cancel_rate = kEvents / Seconds(t0, t1);
  (void)counter;
  return {fire_rate, cancel_rate};
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Data-plane hot-path microbenchmarks ===\n\n");

  // CRC over a 64 KB buffer (the journal bypass threshold — the largest
  // payload the journaled path hashes).
  std::vector<uint8_t> crc_buf(64 * 1024);
  Rng rng(7);
  for (auto& b : crc_buf) {
    b = static_cast<uint8_t>(rng.Uniform(256));
  }
  CrcResult table = BenchCrcImpl(Crc32cImpl::kTable, "table", crc_buf);
  CrcResult slice8 = BenchCrcImpl(Crc32cImpl::kSlice8, "slice8", crc_buf);
  CrcResult hw = BenchCrcImpl(Crc32cImpl::kHardware, "hardware", crc_buf);

  core::Table crc_table({"CRC32C impl", "GB/s", "vs table"});
  for (const CrcResult& r : {table, slice8, hw}) {
    if (r.available) {
      crc_table.AddRow({r.name, core::Table::Num(r.gbps, 2),
                        core::Table::Num(r.gbps / table.gbps, 1) + "x"});
    }
  }
  crc_table.Print();
  std::printf("active dispatch: %s\n\n", Crc32cImplName());

  IndexResult idx = BenchIndex();
  core::Table idx_table({"RangeIndex op", "ops/s"});
  idx_table.AddRow({"insert", core::Table::Int(idx.inserts_per_s)});
  idx_table.AddRow({"Query (allocating)", core::Table::Int(idx.query_per_s)});
  idx_table.AddRow({"QueryTo (alloc-free)", core::Table::Int(idx.queryto_per_s)});
  idx_table.Print();
  std::printf("QueryTo speedup: %.2fx\n\n", idx.queryto_per_s / idx.query_per_s);

  BufferResult buf = BenchBuffer();
  core::Table buf_table({"64KB payload hop", "hops/s"});
  buf_table.AddRow({"memcpy per hop", core::Table::Int(buf.copy_hops_per_s)});
  buf_table.AddRow({"BufferView per hop", core::Table::Int(buf.view_hops_per_s)});
  buf_table.Print();
  std::printf("zero-copy speedup: %.0fx\n\n", buf.view_hops_per_s / buf.copy_hops_per_s);

  EventResult ev = BenchEvents();
  core::Table ev_table({"EventQueue op", "events/s"});
  ev_table.AddRow({"schedule+fire", core::Table::Int(ev.fire_per_s)});
  ev_table.AddRow({"schedule+cancel", core::Table::Int(ev.cancel_per_s)});
  ev_table.Print();

  std::string json_path = core::MetricsJsonPath(argc, argv);
  if (json_path.empty()) {
    json_path = "BENCH_hotpath.json";
  }
  std::ofstream os(json_path);
  os << "{\"bench\":\"hotpath\""
     << ",\"crc32c_table_gbps\":" << table.gbps
     << ",\"crc32c_slice8_gbps\":" << (slice8.available ? slice8.gbps : 0)
     << ",\"crc32c_hw_gbps\":" << (hw.available ? hw.gbps : 0)
     << ",\"crc32c_hw_available\":" << (hw.available ? "true" : "false")
     << ",\"crc32c_best_vs_table\":"
     << ((hw.available ? hw.gbps : slice8.available ? slice8.gbps : table.gbps) / table.gbps)
     << ",\"index_insert_per_s\":" << idx.inserts_per_s
     << ",\"index_query_per_s\":" << idx.query_per_s
     << ",\"index_queryto_per_s\":" << idx.queryto_per_s
     << ",\"buffer_copy_hops_per_s\":" << buf.copy_hops_per_s
     << ",\"buffer_view_hops_per_s\":" << buf.view_hops_per_s
     << ",\"event_fire_per_s\":" << ev.fire_per_s
     << ",\"event_cancel_per_s\":" << ev.cancel_per_s << "}\n";
  std::printf("\nmetrics written to %s\n", json_path.c_str());
  return 0;
}
