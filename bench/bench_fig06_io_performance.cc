// Figure 6: I/O performance of Ursa (hybrid + SSD-only) vs Sheepdog and Ceph
// (both SSD-only), on the small testbed (3 chunk-server machines, 1 client).
//
//   (a) random 4K IOPS, qd16  — Ursa-Hybrid ~= Ursa-SSD > Ceph, Sheepdog
//   (b) random 4K latency, qd1 — reads similar everywhere (all primaries on
//       SSD); Ursa's writes lower than Ceph/Sheepdog
//   (c) sequential 1 MB throughput, qd1 — Ursa-Hybrid has the WORST write
//       throughput (1 MB > Tj bypasses journals straight to backup HDDs; the
//       deliberately worst-case configuration the paper calls out)
#include <cstdio>
#include <vector>

#include "src/baselines/ceph_model.h"
#include "src/baselines/sheepdog_model.h"
#include "src/core/system.h"

using namespace ursa;

namespace {

constexpr uint64_t kDiskSize = 4ull * kGiB;

struct Row {
  std::string name;
  double read_iops, write_iops;
  double read_lat, write_lat;
  double read_tp, write_tp;
};

Row RunSystem(const core::SystemProfile& profile, const std::string& metrics_json = "") {
  Row row;
  row.name = profile.name;
  {
    core::TestBed bed(profile);
    auto* disk = bed.NewDisk(kDiskSize);
    core::WorkloadSpec spec;
    spec.block_size = 4 * kKiB;
    spec.queue_depth = 16;
    spec.read_fraction = 1.0;
    row.read_iops = bed.RunWorkload(disk, spec, msec(300), sec(2), "riops").read_iops();
    spec.read_fraction = 0.0;
    row.write_iops = bed.RunWorkload(disk, spec, msec(300), sec(2), "wiops").write_iops();
    bed.DumpMetricsJson(metrics_json);  // no-op when empty
  }
  {
    core::TestBed bed(profile);
    auto* disk = bed.NewDisk(kDiskSize);
    core::WorkloadSpec spec;
    spec.block_size = 4 * kKiB;
    spec.queue_depth = 1;
    spec.read_fraction = 1.0;
    row.read_lat = bed.RunWorkload(disk, spec, msec(300), sec(2), "rlat")
                       .read_latency_us.Mean();
    spec.read_fraction = 0.0;
    row.write_lat = bed.RunWorkload(disk, spec, msec(300), sec(2), "wlat")
                        .write_latency_us.Mean();
  }
  {
    core::TestBed bed(profile);
    auto* disk = bed.NewDisk(kDiskSize);
    core::WorkloadSpec spec;
    spec.pattern = core::WorkloadSpec::Pattern::kSequential;
    spec.block_size = 1 * kMiB;
    spec.queue_depth = 1;
    spec.read_fraction = 1.0;
    row.read_tp = bed.RunWorkload(disk, spec, msec(300), sec(3), "rtp").read_mbps();
    spec.read_fraction = 0.0;
    row.write_tp = bed.RunWorkload(disk, spec, msec(300), sec(3), "wtp").write_mbps();
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Figure 6: I/O performance (3 servers + 1 client) ===\n\n");

  // The JSON artifact (when requested) captures the hybrid IOPS testbed —
  // the configuration the paper's headline numbers come from.
  std::vector<Row> rows;
  rows.push_back(RunSystem(baselines::SheepdogProfile(3)));
  rows.push_back(RunSystem(baselines::CephProfile(3)));
  rows.push_back(RunSystem(core::UrsaSsdProfile(3)));
  rows.push_back(RunSystem(core::UrsaHybridProfile(3), core::MetricsJsonPath(argc, argv)));

  std::printf("--- (a) Random IOPS (BS=4KB, QD=16) ---\n");
  core::Table a({"System", "Read IOPS", "Write IOPS"});
  for (const Row& r : rows) {
    a.AddRow({r.name, core::Table::Int(r.read_iops), core::Table::Int(r.write_iops)});
  }
  a.Print();

  std::printf("\n--- (b) Random I/O latency (BS=4KB, QD=1), microseconds ---\n");
  core::Table b({"System", "Read us", "Write us"});
  for (const Row& r : rows) {
    b.AddRow({r.name, core::Table::Num(r.read_lat, 0), core::Table::Num(r.write_lat, 0)});
  }
  b.Print();

  std::printf("\n--- (c) Sequential throughput (BS=1MB, QD=1), MB/s ---\n");
  core::Table c({"System", "Read MB/s", "Write MB/s"});
  for (const Row& r : rows) {
    c.AddRow({r.name, core::Table::Num(r.read_tp, 0), core::Table::Num(r.write_tp, 0)});
  }
  c.Print();

  // Shape checks against the paper's qualitative results.
  const Row& sheep = rows[0];
  const Row& ceph = rows[1];
  const Row& ussd = rows[2];
  const Row& uhyb = rows[3];
  bool ok = true;
  auto check = [&ok](bool cond, const char* what) {
    std::printf("  %-60s %s\n", what, cond ? "OK" : "MISMATCH");
    ok = ok && cond;
  };
  std::printf("\n--- shape checks (paper) ---\n");
  check(uhyb.read_iops > 0.85 * ussd.read_iops, "hybrid read IOPS ~ SSD-only");
  check(uhyb.write_iops > 0.80 * ussd.write_iops, "hybrid write IOPS ~ SSD-only");
  check(ussd.read_iops > ceph.read_iops && ussd.read_iops > sheep.read_iops,
        "Ursa read IOPS beats both baselines");
  check(uhyb.write_iops > ceph.write_iops && uhyb.write_iops > sheep.write_iops,
        "hybrid write IOPS beats both baselines");
  check(uhyb.read_lat < 1.6 * ussd.read_lat && ceph.read_lat < 3.0 * ussd.read_lat,
        "read latencies similar across systems");
  check(uhyb.write_lat < ceph.write_lat && uhyb.write_lat < sheep.write_lat,
        "Ursa write latency lowest");
  check(uhyb.write_tp < ussd.write_tp && uhyb.write_tp < ceph.write_tp,
        "hybrid has the worst 1MB write throughput (journal bypass)");
  std::printf("Fig6 %s\n", ok ? "SHAPE-OK" : "SHAPE-MISMATCH");
  return 0;
}
