// Figure 12: failure recovery traffic over time.
//
// Paper methodology (§6.2): fill a chunk server's SSD, disable it, recover
// to the other SSD co-located on the same machine (3-machine testbed forces
// co-location); the backup data comes from HDDs and SSD journals on the
// other two machines. Paper result: recovery sustains ~500 MB/s, bounded by
// the recovering machine's inbound network bandwidth (10 GbE class).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/core/system.h"

using namespace ursa;

int main(int argc, char** argv) {
  std::printf("=== Figure 12: failure recovery traffic ===\n\n");

  core::TestBed bed(core::UrsaHybridProfile(3));
  auto& cluster = bed.cluster();
  auto& master = cluster.master();
  auto& sim = bed.sim();
  master.set_recovery_carries_data(false);  // timing-only at this scale
  master.set_recovery_window(8);

  // An 8 GiB disk: 128 chunks, whose primaries rotate across the 6 SSDs.
  auto* disk = bed.NewDisk(8ull * kGiB);
  (void)disk;

  // Fail one SSD chunk server and recover every chunk it hosted.
  cluster::ServerId failed = 0;  // machine 0, SSD 0 primary server
  std::vector<cluster::ChunkId> victim_chunks;
  const cluster::DiskMeta* meta = *master.GetDisk(1);
  for (const auto& layout : meta->chunks) {
    for (const auto& r : layout.replicas) {
      if (r.server == failed) {
        victim_chunks.push_back(layout.chunk);
      }
    }
  }
  std::printf("Failing server %u hosting %zu chunks (%.0f MB of primary data)\n\n", failed,
              victim_chunks.size(),
              static_cast<double>(victim_chunks.size() * meta->chunk_size) / 1e6);
  cluster.CrashServer(failed);

  // Recover with bounded parallelism, like the cluster director.
  constexpr size_t kConcurrency = 4;
  size_t next = 0;
  size_t done_count = 0;
  size_t failures = 0;
  std::function<void()> pump = [&]() {
    while (next < victim_chunks.size() && (next - done_count) < kConcurrency) {
      cluster::ChunkId chunk = victim_chunks[next++];
      master.ReportReplicaFailure(chunk, failed, [&](Status s) {
        if (!s.ok()) {
          ++failures;
        }
        ++done_count;
        pump();
      });
    }
  };
  Nanos start = sim.Now();
  pump();

  // Sample inbound bytes of every machine each 250 ms until recovery ends.
  core::Table table({"t (s)", "recovery MB/s", "chunks done"});
  std::vector<double> rates;
  uint64_t last_in = 0;
  auto total_in = [&]() {
    uint64_t sum = 0;
    for (size_t m = 0; m < cluster.num_machines(); ++m) {
      sum += cluster.transport().bytes_in(cluster.machine(m).node());
    }
    return sum;
  };
  last_in = total_in();
  for (int i = 0; i < 200 && done_count < victim_chunks.size(); ++i) {
    sim.RunUntil(sim.Now() + msec(250));
    uint64_t now_in = total_in();
    double mbps = static_cast<double>(now_in - last_in) / 0.25 / 1e6;
    last_in = now_in;
    rates.push_back(mbps);
    table.AddRow({core::Table::Num(ToSec(sim.Now() - start), 2), core::Table::Int(mbps),
                  std::to_string(done_count)});
  }
  table.Print();

  double total_gb =
      static_cast<double>(master.recovery_stats().bytes_transferred) / 1e9;
  double elapsed = ToSec(sim.Now() - start);
  double steady = 0;
  size_t steady_n = 0;
  for (size_t i = 0; i + 1 < rates.size(); ++i) {  // skip the ramp-down tail
    steady += rates[i];
    ++steady_n;
  }
  steady /= std::max<size_t>(steady_n, 1);
  std::printf("\nRecovered %.2f GB in %.2f s; steady rate ~%.0f MB/s (paper: ~500 MB/s,\n",
              total_gb, elapsed, steady);
  std::printf("bounded by the recovering machine's inbound NIC)\n");
  bool ok = failures == 0 && done_count == victim_chunks.size() && steady > 250 &&
            steady < 2600;
  std::printf("Fig12 %s\n", ok ? "SHAPE-OK" : "SHAPE-MISMATCH");
  bed.DumpMetricsJson(core::MetricsJsonPath(argc, argv));
  return 0;
}
