// Figure 11: on-demand journal expansion (§3.2).
//
// A rarely-long burst of random small writes exhausts the SSD journal quota;
// Ursa redirects the backup load to HDD journals. Paper result: IOPS drop
// after the switch but "performance degradation is not significantly high,
// because HDDs perform much better in sequential journal appends than in
// random small writes". This harness shrinks the SSD quota so the overflow
// happens within simulated seconds and prints the IOPS time series.
#include <cstdio>

#include "src/core/system.h"

using namespace ursa;

int main() {
  std::printf("=== Figure 11: journal expansion (SSD journal -> HDD journal) ===\n\n");

  core::SystemProfile profile = core::UrsaHybridProfile(3);
  // Shrink the SSD quota (paper: 1/10 of capacity) so a sustained burst
  // overflows quickly; disable the second-SSD expansion stage to get the
  // clean SSD->HDD transition of Fig. 11.
  profile.cluster.journal_quota_fraction = 0.0004;  // ~160 MB per SSD
  profile.cluster.enable_expansion_journal = false;
  profile.cluster.hdd_journal_bytes = 16 * kGiB;

  core::TestBed bed(profile);
  auto* disk = bed.NewDisk(4ull * kGiB);

  core::WorkloadSpec spec;
  spec.block_size = 4 * kKiB;
  spec.queue_depth = 16;
  spec.read_fraction = 0.0;

  core::Table table({"t (s)", "IOPS", "active journal", "expansions", "fallbacks"});
  double before_iops = 0;
  double after_iops = 0;
  int before_n = 0;
  int after_n = 0;
  bool expanded_seen = false;

  constexpr int kIntervals = 30;
  for (int i = 0; i < kIntervals; ++i) {
    core::RunMetrics m = bed.RunWorkload(disk, spec, 0, msec(500), "interval");
    uint64_t expansions = 0;
    uint64_t fallbacks = 0;
    size_t max_active = 0;
    for (const auto* jm : bed.cluster().journal_managers()) {
      expansions += jm->stats().expansions;
      fallbacks += jm->stats().direct_fallback_writes;
      max_active = std::max(max_active, jm->active_journal());
    }
    bool on_hdd_journal = expansions > 0;
    table.AddRow({core::Table::Num(0.5 * (i + 1), 1), core::Table::Int(m.write_iops()),
                  on_hdd_journal ? "HDD" : "SSD", std::to_string(expansions),
                  std::to_string(fallbacks)});
    if (on_hdd_journal) {
      expanded_seen = true;
      after_iops += m.write_iops();
      ++after_n;
    } else {
      before_iops += m.write_iops();
      ++before_n;
    }
  }
  table.Print();

  before_iops /= std::max(before_n, 1);
  after_iops /= std::max(after_n, 1);
  std::printf("\nMean IOPS on SSD journal: %.0f   on HDD journal: %.0f  (ratio %.2f)\n",
              before_iops, after_iops, after_iops / std::max(before_iops, 1.0));
  bool ok = expanded_seen && after_iops > 0.15 * before_iops && after_iops < before_iops;
  std::printf("Fig11 %s\n", ok ? "SHAPE-OK" : "SHAPE-MISMATCH");
  return 0;
}
