// Figure 14: trace-driven comparison on three representative MSR volumes.
//
// Paper methodology (§6.4): a custom tool replays the traces ignoring
// timestamps at qd16. prxy_0 is write-dominated, proj_0 write-heavy, mds_1
// read-heavy. Paper result: Ursa-SSD is the best performer in every trace;
// Ursa-Hybrid is comparable to or better than Ceph and Sheepdog (SSD-only).
#include <cstdio>
#include <vector>

#include "src/baselines/ceph_model.h"
#include "src/baselines/sheepdog_model.h"
#include "src/core/system.h"
#include "src/trace/msr_generator.h"

using namespace ursa;

int main() {
  std::printf("=== Figure 14: trace-driven IOPS (qd16, timestamps ignored) ===\n\n");

  const std::vector<std::string> traces = {"prxy_0", "proj_0", "mds_1"};
  std::vector<core::SystemProfile> systems = {
      baselines::SheepdogProfile(3),
      baselines::CephProfile(3),
      core::UrsaSsdProfile(3),
      core::UrsaHybridProfile(3),
  };
  constexpr size_t kOps = 30000;

  // results[system][trace]
  std::vector<std::vector<double>> results(systems.size());
  for (size_t s = 0; s < systems.size(); ++s) {
    for (const std::string& name : traces) {
      const trace::TraceProfile* profile = trace::FindTraceProfile(name);
      auto records = trace::SynthesizeTrace(*profile, kOps, 42);
      core::TestBed bed(systems[s]);
      auto* disk = bed.NewDisk(8ull * kGiB);
      core::RunMetrics m = bed.RunTrace(disk, records, 16, name);
      results[s].push_back(m.iops());
    }
  }

  core::Table table({"System", "prxy_0 (wr-dom)", "proj_0 (wr-heavy)", "mds_1 (rd-heavy)"});
  for (size_t s = 0; s < systems.size(); ++s) {
    table.AddRow({systems[s].name, core::Table::Int(results[s][0]),
                  core::Table::Int(results[s][1]), core::Table::Int(results[s][2])});
  }
  table.Print();

  bool ok = true;
  auto check = [&ok](bool cond, const char* what) {
    std::printf("  %-60s %s\n", what, cond ? "OK" : "MISMATCH");
    ok = ok && cond;
  };
  std::printf("\n--- shape checks (paper) ---\n");
  for (size_t t = 0; t < traces.size(); ++t) {
    // Ursa-SSD (index 2) best performer in all experiments.
    bool best = results[2][t] >= results[0][t] && results[2][t] >= results[1][t] &&
                results[2][t] >= results[3][t] * 0.98;
    check(best, ("Ursa-SSD best on " + traces[t]).c_str());
    // Hybrid comparable to or better than both baselines.
    bool hybrid_ok = results[3][t] >= 0.9 * results[0][t] && results[3][t] >= 0.9 * results[1][t];
    check(hybrid_ok, ("Ursa-Hybrid >= baselines on " + traces[t]).c_str());
  }
  std::printf("Fig14 %s\n", ok ? "SHAPE-OK" : "SHAPE-MISMATCH");
  return 0;
}
