#!/usr/bin/env python3
"""CI regression gate for BENCH_*.json metrics.

Usage: check_bench_regression.py --baselines bench/bench_baselines.json \
           BENCH_hotpath.json [BENCH_fig10_index_vs_flsm.json ...]

Each metrics file carries a "bench" key naming its baseline section. A metric
fails when it drops more than the allowed slack (20%) below its checked-in
baseline; metrics without a baseline entry are reported but not gated.
Exits nonzero on any failure so the CI job fails.
"""

import argparse
import json
import sys

SLACK = 0.80  # measured must be >= baseline * SLACK


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baselines", required=True)
    parser.add_argument("metrics", nargs="+")
    args = parser.parse_args()

    with open(args.baselines) as f:
        baselines = json.load(f)

    failures = []
    for path in args.metrics:
        with open(path) as f:
            metrics = json.load(f)
        bench = metrics.get("bench")
        section = baselines.get(bench)
        if section is None:
            print(f"{path}: no baseline section for bench={bench!r}, skipping")
            continue
        print(f"== {path} (bench={bench}) ==")
        for key, floor in section.items():
            if key.startswith("_"):  # annotation, not a metric
                continue
            measured = metrics.get(key)
            if measured is None:
                failures.append(f"{bench}.{key}: missing from {path}")
                print(f"  {key:28s} MISSING (baseline {floor:g})")
                continue
            limit = floor * SLACK
            ok = measured >= limit
            status = "ok" if ok else "FAIL"
            print(
                f"  {key:28s} {measured:14.4g}  baseline {floor:10.4g}"
                f"  floor {limit:10.4g}  {status}"
            )
            if not ok:
                failures.append(
                    f"{bench}.{key}: {measured:g} < {limit:g}"
                    f" (baseline {floor:g} - 20%)"
                )

    if failures:
        print("\nRegression gate FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("\nRegression gate passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
