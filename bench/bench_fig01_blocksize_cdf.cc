// Figure 1: CDF of I/O block sizes across the MSR-style trace mix.
//
// Paper result: more than 70% of I/O sizes are at most 8 KB; almost all are
// at most 64 KB. This harness samples the synthesized workload mix and
// prints the empirical CDF next to the generator's target anchors.
#include <cstdio>
#include <map>

#include "src/common/rng.h"
#include "src/core/metrics.h"
#include "src/trace/msr_generator.h"
#include "src/trace/workload.h"

using namespace ursa;

int main() {
  std::printf("=== Figure 1: CDF of I/O block sizes ===\n");
  std::printf("(paper: >70%% of I/O <= 8 KB; almost all <= 64 KB)\n\n");

  // Sample across all 36 volume profiles, matching how the paper aggregates
  // the full trace set.
  std::map<uint32_t, uint64_t> counts;
  uint64_t total = 0;
  Rng rng(2019);
  for (const trace::TraceProfile& profile : trace::MsrTraceProfiles()) {
    auto records = trace::SynthesizeTrace(profile, 20000, rng.Next());
    for (const auto& rec : records) {
      ++counts[rec.length];
      ++total;
    }
  }

  core::Table table({"Block size", "Count", "PDF %", "CDF %"});
  uint64_t cum = 0;
  double at_8k = 0;
  double at_64k = 0;
  for (const auto& [size, count] : counts) {
    cum += count;
    double pdf = 100.0 * static_cast<double>(count) / static_cast<double>(total);
    double cdf = 100.0 * static_cast<double>(cum) / static_cast<double>(total);
    std::string label = size >= 1024 * 1024 ? std::to_string(size / (1024 * 1024)) + "M"
                        : size >= 1024     ? std::to_string(size / 1024) + "K"
                                           : std::to_string(size) + "B";
    table.AddRow({label, std::to_string(count), core::Table::Num(pdf, 2),
                  core::Table::Num(cdf, 2)});
    if (size == 8 * 1024) {
      at_8k = cdf;
    }
    if (size == 64 * 1024) {
      at_64k = cdf;
    }
  }
  table.Print();

  std::printf("\nCDF at 8 KB : %.1f%%  (paper: >70%%)\n", at_8k);
  std::printf("CDF at 64 KB: %.1f%%  (paper: ~all, >98%%)\n", at_64k);
  std::printf("Fig1 %s\n", at_8k > 70.0 && at_64k > 98.0 ? "SHAPE-OK" : "SHAPE-MISMATCH");
  return 0;
}
