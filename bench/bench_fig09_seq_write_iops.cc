// Figure 9: sequential write IOPS vs queue depth (BS = 4 KB).
//
// Paper result: sequential write IOPS are much lower than sequential read
// IOPS at every depth "because writes frequently cause lock contentions" —
// consecutive 4 KB writes hit the same chunk and must be version-ordered, so
// extra queue depth buys far less than it does for reads. Ursa still leads.
#include <cstdio>
#include <vector>

#include "src/baselines/ceph_model.h"
#include "src/baselines/sheepdog_model.h"
#include "src/core/system.h"

using namespace ursa;

int main() {
  std::printf("=== Figure 9: sequential write IOPS vs queue depth (BS=4KB) ===\n\n");

  const int kDepths[] = {1, 2, 4, 8, 16};
  std::vector<core::SystemProfile> systems = {
      baselines::SheepdogProfile(3),
      baselines::CephProfile(3),
      core::UrsaSsdProfile(3),
      core::UrsaHybridProfile(3),
  };

  core::Table table({"System", "qd1", "qd2", "qd4", "qd8", "qd16"});
  std::vector<std::vector<double>> results;
  for (const core::SystemProfile& profile : systems) {
    core::TestBed bed(profile);
    auto* disk = bed.NewDisk(4ull * kGiB);
    std::vector<std::string> row = {profile.name};
    std::vector<double> iops_row;
    for (int qd : kDepths) {
      core::WorkloadSpec spec;
      spec.pattern = core::WorkloadSpec::Pattern::kSequential;
      spec.block_size = 4 * kKiB;
      spec.queue_depth = qd;
      spec.read_fraction = 0.0;
      core::RunMetrics m = bed.RunWorkload(disk, spec, msec(200), sec(2), "seqwrite");
      iops_row.push_back(m.write_iops());
      row.push_back(core::Table::Int(m.write_iops()));
    }
    results.push_back(iops_row);
    table.AddRow(row);
  }
  table.Print();

  // Reference: Ursa-Hybrid sequential reads at qd16 for the read/write gap.
  double read_ref;
  {
    core::TestBed bed(core::UrsaHybridProfile(3));
    auto* disk = bed.NewDisk(4ull * kGiB);
    core::WorkloadSpec spec;
    spec.pattern = core::WorkloadSpec::Pattern::kSequential;
    spec.block_size = 4 * kKiB;
    spec.queue_depth = 16;
    spec.read_fraction = 1.0;
    read_ref = bed.RunWorkload(disk, spec, msec(200), sec(2), "ref").read_iops();
  }

  bool ok = true;
  auto check = [&ok](bool cond, const char* what) {
    std::printf("  %-60s %s\n", what, cond ? "OK" : "MISMATCH");
    ok = ok && cond;
  };
  std::printf("\n--- shape checks (paper) ---\n");
  check(results[3][4] < 0.5 * read_ref,
        "sequential write IOPS well below read IOPS (write ordering)");
  check(results[2][4] >= results[0][4] && results[2][4] >= results[1][4],
        "Ursa leads at qd16");
  check(results[3][4] > 0.7 * results[2][4], "hybrid ~ SSD-only (journal absorbs)");
  std::printf("Fig9 %s\n", ok ? "SHAPE-OK" : "SHAPE-MISMATCH");
  return 0;
}
