// Figure 13: scalability.
//
//   (a) aggregate random 4K IOPS scales linearly, 11 -> 44 machines
//   (b) aggregate sequential 1 MB throughput scales linearly
//   (c) striping: parallel 1 MB throughput grows with the stripe group size
//       {non-striping, 2, 4, 8} from a dedicated two-NIC client (qd16)
//
// Clients run on every storage machine (paper: "to saturate the system").
// Absolute IOPS depend on clients-per-machine; the paper's claim is the
// LINEAR scaling, which is what the shape check verifies.
#include <cstdio>
#include <vector>

#include "src/core/system.h"

using namespace ursa;

namespace {

struct ScalePoint {
  int machines;
  double read_iops, write_iops;
  double read_gbps, write_gbps;
};

ScalePoint RunScale(int machines) {
  ScalePoint point;
  point.machines = machines;

  {  // (a) random IOPS: one client per machine, qd32.
    core::TestBed bed(core::UrsaHybridProfile(machines));
    std::vector<std::pair<client::VirtualDisk*, core::WorkloadSpec>> jobs;
    core::WorkloadSpec spec;
    spec.block_size = 4 * kKiB;
    spec.queue_depth = 32;
    spec.read_fraction = 1.0;
    for (int m = 0; m < machines; ++m) {
      spec.seed = 1000 + m;
      jobs.emplace_back(bed.NewDiskOn(&bed.cluster().machine(m), 2ull * kGiB), spec);
    }
    core::RunMetrics r = bed.RunWorkloads(jobs, msec(100), msec(400), "iops-read");
    point.read_iops = r.read_iops();
    for (auto& [disk, s] : jobs) {
      s.read_fraction = 0.0;
    }
    std::vector<std::pair<client::VirtualDisk*, core::WorkloadSpec>> wjobs;
    for (auto& [disk, s] : jobs) {
      core::WorkloadSpec ws = s;
      ws.read_fraction = 0.0;
      wjobs.emplace_back(disk, ws);
    }
    core::RunMetrics w = bed.RunWorkloads(wjobs, msec(100), msec(400), "iops-write");
    point.write_iops = w.write_iops();
  }
  {  // (b) sequential throughput: one client per machine, 1 MB qd1 (the
     //     paper's Fig. 6c configuration, aggregated over the fleet).
    core::TestBed bed(core::UrsaHybridProfile(machines));
    std::vector<std::pair<client::VirtualDisk*, core::WorkloadSpec>> jobs;
    core::WorkloadSpec spec;
    spec.pattern = core::WorkloadSpec::Pattern::kSequential;
    spec.block_size = 1 * kMiB;
    spec.queue_depth = 1;
    spec.read_fraction = 1.0;
    for (int m = 0; m < machines; ++m) {
      spec.seed = 2000 + m;
      jobs.emplace_back(bed.NewDiskOn(&bed.cluster().machine(m), 4ull * kGiB, 3, 4), spec);
    }
    core::RunMetrics r = bed.RunWorkloads(jobs, msec(100), msec(400), "tp-read");
    point.read_gbps = r.read_mbps() / 1000.0;
    std::vector<std::pair<client::VirtualDisk*, core::WorkloadSpec>> wjobs;
    for (auto& [disk, s] : jobs) {
      core::WorkloadSpec ws = s;
      ws.read_fraction = 0.0;
      wjobs.emplace_back(disk, ws);
    }
    core::RunMetrics w = bed.RunWorkloads(wjobs, msec(100), msec(400), "tp-write");
    point.write_gbps = w.write_mbps() / 1000.0;
  }
  return point;
}

}  // namespace

int main() {
  std::printf("=== Figure 13: scalability ===\n\n");

  std::vector<ScalePoint> points;
  for (int machines : {11, 22, 33, 44}) {
    points.push_back(RunScale(machines));
    std::printf("measured %d machines...\n", machines);
  }

  std::printf("\n--- (a) aggregate random 4K IOPS (qd32, 1 client/machine) ---\n");
  core::Table a({"Machines", "Read IOPS", "Write IOPS"});
  for (const auto& p : points) {
    a.AddRow({std::to_string(p.machines), core::Table::Int(p.read_iops),
              core::Table::Int(p.write_iops)});
  }
  a.Print();

  std::printf("\n--- (b) aggregate sequential throughput (1MB), GB/s ---\n");
  core::Table b({"Machines", "Read GB/s", "Write GB/s"});
  for (const auto& p : points) {
    b.AddRow({std::to_string(p.machines), core::Table::Num(p.read_gbps, 1),
              core::Table::Num(p.write_gbps, 1)});
  }
  b.Print();

  std::printf("\n--- (c) striping: parallel 1MB throughput vs stripe group (44 machines) ---\n");
  core::Table c({"Stripe group", "Read MB/s", "Write MB/s"});
  std::vector<double> stripe_read;
  {
    core::TestBed bed(core::UrsaHybridProfile(44));
    for (int group : {1, 2, 4, 8}) {
      auto* disk = bed.NewDisk(8ull * kGiB, 3, group);
      core::WorkloadSpec spec;
      spec.pattern = core::WorkloadSpec::Pattern::kSequential;
      spec.block_size = 1 * kMiB;
      spec.queue_depth = 16;
      spec.read_fraction = 1.0;
      core::RunMetrics r = bed.RunWorkload(disk, spec, msec(100), msec(500), "stripe-r");
      spec.read_fraction = 0.0;
      core::RunMetrics w = bed.RunWorkload(disk, spec, msec(100), msec(500), "stripe-w");
      stripe_read.push_back(r.read_mbps());
      c.AddRow({group == 1 ? "non-striping" : std::to_string(group),
                core::Table::Int(r.read_mbps()), core::Table::Int(w.write_mbps())});
    }
  }
  c.Print();

  bool ok = true;
  auto check = [&ok](bool cond, const char* what) {
    std::printf("  %-60s %s\n", what, cond ? "OK" : "MISMATCH");
    ok = ok && cond;
  };
  std::printf("\n--- shape checks (paper) ---\n");
  double read_ratio = points[3].read_iops / points[0].read_iops;
  double write_ratio = points[3].write_iops / points[0].write_iops;
  double tp_ratio = points[3].read_gbps / points[0].read_gbps;
  check(read_ratio > 3.0 && read_ratio < 5.0, "read IOPS scale ~linearly (4x machines)");
  check(write_ratio > 3.0 && write_ratio < 5.0, "write IOPS scale ~linearly");
  check(tp_ratio > 3.0 && tp_ratio < 5.0, "throughput scales ~linearly");
  check(stripe_read[3] > 1.3 * stripe_read[0], "striping raises parallel read TP");
  std::printf("Fig13 %s\n", ok ? "SHAPE-OK" : "SHAPE-MISMATCH");
  return 0;
}
