// QoS interference benchmark (see DESIGN.md "QoS & background-traffic
// arbitration"): foreground 4K random reads while a journal-replay storm and
// a recovery storm run in the background, with and without the per-device
// QoS scheduler (src/qos).
//
// Methodology: two identical TestBeds differing only in `cluster.qos.enabled`.
// Each measures
//   1. a quiet window (foreground alone) as the no-interference reference;
//   2. a storm window opened by crashing an HDD backup server of a separate
//      victim disk: every lost replica re-replicates by streaming 1 MiB
//      recovery reads FROM the victim chunks' SSD primaries — the same SSDs
//      serving the foreground tenant's 4K reads — onto replacement HDDs,
//      while a second disk's journaled-write churn keeps a replay storm
//      running on the HDD tier. The SSD model is FIFO: without QoS the
//      foreground reads queue behind megabyte recovery reads; with QoS the
//      scheduler's weighted round-robin (fg weight 8 : recovery weight 1)
//      keeps them ahead. The foreground path itself never degrades — no
//      client timeouts pollute the tail;
//   3. recovery convergence: time from the crash until every victim chunk
//      has a full healthy replica set again (QoS watermark backpressure
//      throttles recovery, so it must still finish within ~3x of
//      unthrottled).
//
// Gate (bench/bench_baselines.json, "qos_interference"): QoS must cut the
// storm-window foreground p99 by >= 2x, while throttled recovery converges
// within ~3x of the unthrottled run.
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/system.h"

using namespace ursa;

namespace {

constexpr uint64_t kFgDiskSize = 2ull * kGiB;
constexpr uint64_t kChurnDiskSize = 2ull * kGiB;
constexpr uint64_t kVictimDiskSize = 8ull * kGiB;
constexpr uint64_t kChunkSize = 16 * kMiB;  // smaller chunks -> more victims
constexpr int kChurnDepth = 8;
constexpr uint64_t kChurnBlock = 16 * kKiB;  // < Tj, so every write journals

struct ModeResult {
  std::string name;
  double quiet_p99_us = 0;
  double storm_p50_us = 0;
  double storm_p99_us = 0;
  double recovery_s = 0;
  size_t victim_chunks = 0;
  bool converged = false;
};

// Closed-loop journal churn: random 16K timing-only writes at a fixed queue
// depth, re-issuing from each completion until stopped.
struct ChurnPump {
  client::VirtualDisk* disk = nullptr;
  Rng rng{0x9e3779b97f4a7c15ull};
  int inflight = 0;
  bool stop = false;

  void Fill() {
    while (!stop && inflight < kChurnDepth) {
      ++inflight;
      uint64_t blocks = kChurnDiskSize / kChurnBlock;
      uint64_t off = (rng.Next() % blocks) * kChurnBlock;
      disk->Write(off, kChurnBlock, nullptr, [this](const Status&) {
        --inflight;
        Fill();  // ignore errors: the crash degrades some replication legs
      });
    }
  }
};

ModeResult RunMode(bool qos_enabled) {
  core::SystemProfile profile = core::UrsaHybridProfile(3);
  profile.name = qos_enabled ? "qos-on" : "qos-off";
  profile.cluster.qos.enabled = qos_enabled;
  profile.cluster.chunk_size = kChunkSize;

  core::TestBed bed(profile);
  auto& cluster = bed.cluster();
  auto& master = cluster.master();
  auto& sim = bed.sim();

  client::VirtualDisk* fg = bed.NewDisk(kFgDiskSize);           // disk 1
  client::VirtualDisk* churn_disk = bed.NewDisk(kChurnDiskSize);  // disk 2
  bed.NewDisk(kVictimDiskSize);                                 // disk 3

  core::WorkloadSpec fg_spec;
  fg_spec.block_size = 4 * kKiB;
  fg_spec.queue_depth = 8;
  fg_spec.read_fraction = 1.0;

  ModeResult out;
  out.name = profile.name;

  // 1. Quiet reference window.
  core::RunMetrics quiet = bed.RunWorkload(fg, fg_spec, msec(300), sec(1), "quiet");
  out.quiet_p99_us = static_cast<double>(quiet.read_latency_us.Percentile(99));

  // 2. Start the journal churn and let a replay backlog build.
  ChurnPump pump;
  pump.disk = churn_disk;
  pump.Fill();
  sim.RunUntil(sim.Now() + msec(300));

  // Crash an HDD backup server hosting victim-disk replicas. Re-replicating
  // its chunks streams recovery reads from the SSD primaries the foreground
  // tenant shares. (Hybrid placement sorts replicas SSD-first, so
  // replicas[1] is an HDD backup.)
  const cluster::DiskMeta* victim_meta = *master.GetDisk(3);
  cluster::ServerId failed = victim_meta->chunks[0].replicas[1].server;
  std::vector<storage::ChunkId> victims;
  for (const auto& layout : victim_meta->chunks) {
    for (const auto& r : layout.replicas) {
      if (r.server == failed) {
        victims.push_back(layout.chunk);
        break;
      }
    }
  }
  out.victim_chunks = victims.size();
  cluster.CrashServer(failed);
  Nanos crash_time = sim.Now();

  // Recovery storm: report every victim chunk once; re-report on error until
  // its re-replication sticks (the master dedups nothing — one report, one
  // transfer). Convergence is then checked against the layout itself.
  std::function<void(storage::ChunkId)> report = [&](storage::ChunkId chunk) {
    master.ReportReplicaFailure(chunk, failed, [&, chunk](const Status& s) {
      if (!s.ok()) {
        sim.After(msec(100), [&, chunk]() { report(chunk); });
      }
    });
  };
  for (storage::ChunkId chunk : victims) {
    report(chunk);
  }

  auto healed = [&master, failed]() {
    const cluster::DiskMeta* meta = *master.GetDisk(3);
    for (const auto& layout : meta->chunks) {
      for (const auto& r : layout.replicas) {
        if (r.server == failed) {
          return false;
        }
      }
    }
    return true;
  };
  Nanos heal_time = 0;
  auto poll = std::make_shared<std::function<void()>>();
  *poll = [&sim, &heal_time, healed, poll]() {
    if (healed()) {
      heal_time = sim.Now();
      return;
    }
    sim.After(msec(10), *poll);
  };
  sim.After(msec(10), *poll);

  // 3. Foreground under the combined replay + recovery storm.
  core::RunMetrics storm = bed.RunWorkload(fg, fg_spec, msec(100), sec(2), "storm");
  out.storm_p50_us = static_cast<double>(storm.read_latency_us.Percentile(50));
  out.storm_p99_us = static_cast<double>(storm.read_latency_us.Percentile(99));

  // 4. Stop the churn and wait for the victim set to converge.
  pump.stop = true;
  for (int i = 0; i < 600 && heal_time == 0; ++i) {
    sim.RunUntil(sim.Now() + msec(50));
  }
  out.converged = heal_time != 0;
  out.recovery_s = out.converged ? ToSec(heal_time - crash_time) : 0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== QoS interference: foreground 4K reads vs replay+recovery storms ===\n\n");

  ModeResult off = RunMode(false);
  ModeResult on = RunMode(true);

  core::Table table({"mode", "quiet p99 (us)", "storm p50 (us)", "storm p99 (us)",
                     "recovery (s)", "victims"});
  for (const ModeResult* r : {&off, &on}) {
    table.AddRow({r->name, core::Table::Int(r->quiet_p99_us), core::Table::Int(r->storm_p50_us),
                  core::Table::Int(r->storm_p99_us), core::Table::Num(r->recovery_s, 2),
                  std::to_string(r->victim_chunks)});
  }
  table.Print();

  double p99_improvement = on.storm_p99_us > 0 ? off.storm_p99_us / on.storm_p99_us : 0;
  // Throttled recovery is slower; the acceptance bound is "within 3x of
  // unthrottled", i.e. speed ratio (unthrottled time / throttled time) >~ 1/3.
  double recovery_speed_ratio = on.recovery_s > 0 ? off.recovery_s / on.recovery_s : 0;
  std::printf("\nQoS storm p99 improvement: %.2fx (gate: >= 2x)\n", p99_improvement);
  std::printf("Recovery speed ratio (off/on): %.2f (gate: >= ~1/3, i.e. within 3x)\n",
              recovery_speed_ratio);

  bool ok = off.converged && on.converged && p99_improvement >= 2.0 &&
            recovery_speed_ratio >= 1.0 / 3.0;
  std::printf("QoS-interference %s\n", ok ? "SHAPE-OK" : "SHAPE-MISMATCH");

  std::string json_path = core::MetricsJsonPath(argc, argv);
  if (json_path.empty()) {
    json_path = "BENCH_qos_interference.json";
  }
  std::ofstream os(json_path);
  os << "{\"bench\":\"qos_interference\""
     << ",\"quiet_p99_us_qos_off\":" << off.quiet_p99_us
     << ",\"quiet_p99_us_qos_on\":" << on.quiet_p99_us
     << ",\"storm_p50_us_qos_off\":" << off.storm_p50_us
     << ",\"storm_p50_us_qos_on\":" << on.storm_p50_us
     << ",\"storm_p99_us_qos_off\":" << off.storm_p99_us
     << ",\"storm_p99_us_qos_on\":" << on.storm_p99_us
     << ",\"recovery_seconds_qos_off\":" << off.recovery_s
     << ",\"recovery_seconds_qos_on\":" << on.recovery_s
     << ",\"qos_p99_improvement\":" << p99_improvement
     << ",\"recovery_speed_ratio\":" << recovery_speed_ratio << "}\n";
  std::printf("metrics written to %s\n", json_path.c_str());
  return 0;
}
