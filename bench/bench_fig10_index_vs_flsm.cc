// Figure 10: Ursa's range-native journal index vs a PebblesDB-style FLSM.
//
// Paper methodology: insert 700,000 random ranges (start in [0, 2^20),
// length in [1, 64]); for Ursa, 100,000 ranges live in the red-black tree and
// 600,000 in the sorted array. Then run 100,000 random range queries.
// Paper result: Ursa 2.17 M inserts/s and 1.35 M queries/s; PebblesDB 19 K
// and 18 K — two orders of magnitude apart on BOTH operations.
//
// Unlike the simulation benches this one measures REAL wall-clock time of
// real data structures.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <vector>

#include "src/common/rng.h"
#include "src/core/metrics.h"
#include "src/index/flsm_index.h"
#include "src/index/range_index.h"

using namespace ursa;

namespace {

struct Op {
  uint32_t offset;
  uint32_t length;
  uint64_t j_offset;
};

std::vector<Op> MakeOps(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Op> ops;
  ops.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Op op;
    op.offset = static_cast<uint32_t>(rng.Uniform((1u << 20) - 64));
    op.length = static_cast<uint32_t>(rng.UniformRange(1, 64));
    op.j_offset = rng.Uniform(1u << 28);
    ops.push_back(op);
  }
  return ops;
}

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// Queries are fast enough that one pass over the query set lasts ~20ms and
// scheduler noise dominates; run `passes` and keep the best.
template <typename Fn>
double BestQueryRate(size_t queries, int passes, Fn&& fn) {
  double best = 0;
  for (int p = 0; p < passes; ++p) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    best = std::max(best, queries / Seconds(t0, t1));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Figure 10: Ursa index vs PebblesDB-style FLSM ===\n");
  std::printf("(paper: Ursa 2.17M/1.35M vs PebblesDB 19K/18K range insert/query per sec)\n\n");

  constexpr size_t kInserts = 700000;
  constexpr size_t kArrayResident = 600000;  // paper: 600K in the array level
  constexpr size_t kQueries = 100000;
  std::vector<Op> inserts = MakeOps(kInserts, 1);
  std::vector<Op> queries = MakeOps(kQueries, 2);

  // --- Ursa index ---
  index::RangeIndex ursa_index(/*merge_threshold=*/SIZE_MAX);  // manual compaction
  auto t0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < kInserts; ++i) {
    ursa_index.Insert(inserts[i].offset, inserts[i].length, inserts[i].j_offset);
    if (i + 1 == kArrayResident) {
      ursa_index.Compact();  // paper setup: 600K in the array, 100K in the tree
    }
  }
  auto t1 = std::chrono::steady_clock::now();
  double ursa_insert_rate = kInserts / Seconds(t0, t1);

  volatile uint64_t sink = 0;
  double ursa_query_rate = BestQueryRate(kQueries, 3, [&]() {
    for (const Op& q : queries) {
      auto segs = ursa_index.Query(q.offset, q.length);
      sink = sink + segs.size();
    }
  });

  // Allocation-free query path (what JournalManager's overlay reads use):
  // one reused SegmentVec, zero allocations once warmed.
  index::SegmentVec segvec;
  double ursa_queryto_rate = BestQueryRate(kQueries, 3, [&]() {
    for (const Op& q : queries) {
      ursa_index.QueryTo(q.offset, q.length, &segvec);
      sink = sink + segvec.size();
    }
  });

  std::printf("Ursa index levels after load: tree=%zu array=%zu (%.1f MB)\n",
              ursa_index.tree_size(), ursa_index.array_size(),
              static_cast<double>(ursa_index.MemoryBytes()) / 1e6);

  // --- FLSM baseline ---
  index::FlsmIndex flsm;
  t0 = std::chrono::steady_clock::now();
  for (const Op& op : inserts) {
    flsm.Insert(op.offset, op.length, op.j_offset);
  }
  t1 = std::chrono::steady_clock::now();
  double flsm_insert_rate = kInserts / Seconds(t0, t1);

  double flsm_query_rate = BestQueryRate(kQueries, 3, [&]() {
    for (const Op& q : queries) {
      auto segs = flsm.Query(q.offset, q.length);
      sink = sink + segs.size();
    }
  });

  core::Table table({"Structure", "Range insert/s", "Range query/s"});
  table.AddRow({"PebblesDB-FLSM", core::Table::Int(flsm_insert_rate),
                core::Table::Int(flsm_query_rate)});
  table.AddRow({"Ursa index", core::Table::Int(ursa_insert_rate),
                core::Table::Int(ursa_query_rate)});
  table.AddRow({"Ursa index (QueryTo)", core::Table::Int(ursa_insert_rate),
                core::Table::Int(ursa_queryto_rate)});
  table.Print();

  double insert_ratio = ursa_insert_rate / flsm_insert_rate;
  double query_ratio = ursa_query_rate / flsm_query_rate;
  std::printf("\nInsert speedup: %.0fx   Query speedup: %.0fx  (paper: ~114x / ~75x)\n",
              insert_ratio, query_ratio);
  std::printf("Allocation-free QueryTo vs allocating Query: %.2fx\n",
              ursa_queryto_rate / ursa_query_rate);
  std::printf("(our FLSM is RAM-only — no WAL, SSTable I/O, or bloom checks — so its\n");
  std::printf(" absolute rates run ~2-3x above real PebblesDB and the gap narrows; the\n");
  std::printf(" structural order-of-magnitude separation is what the check verifies)\n");
  bool ok = insert_ratio > 10 && query_ratio > 10 && ursa_insert_rate > 5e5 &&
            ursa_query_rate > 1e6;
  std::printf("Fig10 %s\n", ok ? "SHAPE-OK" : "SHAPE-MISMATCH");

  std::string json_path = core::MetricsJsonPath(argc, argv);
  if (!json_path.empty()) {
    std::ofstream os(json_path);
    os << "{\"bench\":\"fig10_index_vs_flsm\""
       << ",\"ursa_insert_per_s\":" << ursa_insert_rate
       << ",\"ursa_query_per_s\":" << ursa_query_rate
       << ",\"ursa_queryto_per_s\":" << ursa_queryto_rate
       << ",\"flsm_insert_per_s\":" << flsm_insert_rate
       << ",\"flsm_query_per_s\":" << flsm_query_rate
       << ",\"insert_speedup\":" << insert_ratio
       << ",\"query_speedup\":" << query_ratio
       << ",\"shape_ok\":" << (ok ? "true" : "false") << "}\n";
  }
  (void)sink;
  return 0;
}
