// Health detection benchmark (see DESIGN.md "Device health scoring & SLO
// control"): how fast a gray-slow device is detected and demoted, what the
// demotion buys in foreground tail latency, and whether the SLO controller
// holds the foreground p99 under its target through a recovery storm.
//
// Phase A (detection, SSD-only cluster): two identical TestBeds differing
// only in `cluster.health.enabled`. Both run a mixed 4K workload, then one
// SSD turns gray (+2 ms on every I/O). With health on, the scorer flags the
// device's windowed p99 as a peer outlier, the master demotes its replicas
// (view bump -> clients refresh and steer reads to healthy replicas); with
// health off, ~1/6 of reads keep landing on the gray primary forever. The
// SSD-only mode keeps the comparison honest: failover targets are equally
// fast SSDs, so the measured win is pure detection+steering, not tiering.
// Writes still touch the demoted replica (durability beats steering), so the
// read tail is the gated metric.
//
// Phase B (SLO control, hybrid cluster + QoS): a backup-server crash starts
// a recovery storm against the SSD primaries serving a foreground tenant.
// SloMonitor throttles the bulk classes AIMD-style whenever the windowed
// foreground p99 violates its target; the gates require the storm-window
// read p99 to stay under the target while recovery still converges.
//
// Gates (bench/bench_baselines.json, "health_detection"): read-p99
// improvement from detection >= 2x, detection within its 1 s budget, SLO
// held, recovery converged.
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/system.h"

using namespace ursa;

namespace {

constexpr uint64_t kDiskSize = 2ull * kGiB;
constexpr Nanos kGrayExtraLatency = msec(2);
constexpr Nanos kDetectionBudget = sec(1);
constexpr Nanos kSloTarget = msec(2);

obs::HealthConfig BenchHealthConfig() {
  obs::HealthConfig h;
  h.enabled = true;
  h.window_length = msec(100);
  h.num_windows = 4;
  h.check_interval = msec(50);
  h.min_samples = 8;
  h.suspect_after = 2;
  h.degrade_after = 4;
  h.clear_after = 4;
  return h;
}

struct DetectionResult {
  std::string name;
  double quiet_read_p99_us = 0;
  double gray_read_p99_us = 0;  // steered window, gray device still faulted
  double detection_ms = -1;     // fault -> demotion; -1 = never detected
};

// One Phase-A arm: quiet window, gray fault on m0/ssd0, a detection window
// for the monitor to act, then the gated steered window.
DetectionResult RunDetectionMode(bool health_enabled) {
  core::SystemProfile profile = core::UrsaSsdProfile(3);
  profile.name = health_enabled ? "health-on" : "health-off";
  if (health_enabled) {
    profile.cluster.health = BenchHealthConfig();
  }
  core::TestBed bed(profile);
  auto& sim = bed.sim();
  auto& master = bed.cluster().master();

  client::VirtualDisk* fg = bed.NewDisk(kDiskSize);
  core::WorkloadSpec spec;
  spec.block_size = 4 * kKiB;
  spec.queue_depth = 8;
  spec.read_fraction = 0.5;  // writes keep every replica's digest fed

  DetectionResult out;
  out.name = profile.name;

  core::RunMetrics quiet = bed.RunWorkload(fg, spec, msec(300), msec(500), "quiet");
  out.quiet_read_p99_us = static_cast<double>(quiet.read_latency_us.Percentile(99));

  // The first SSD (hosting server 0) turns gray: +2 ms on every I/O.
  bed.cluster().machine(0).ssd(0).SetFault(storage::DeviceFault{kGrayExtraLatency, false});
  Nanos fault_time = sim.Now();
  Nanos detect_time = 0;
  auto poll = std::make_shared<std::function<void()>>();
  *poll = [&sim, &master, &detect_time, poll]() {
    if (master.IsDemoted(0)) {
      detect_time = sim.Now();
      return;
    }
    sim.After(msec(5), *poll);
  };
  if (health_enabled) {
    (*poll)();
  }

  // Detection window: traffic feeds the digests while the scorer walks the
  // device healthy -> suspect -> degraded. Not gated.
  bed.RunWorkload(fg, spec, 0, kDetectionBudget, "detect");
  if (detect_time != 0) {
    out.detection_ms = ToMsec(detect_time - fault_time);
  }

  // Steered window: with health on, reads have re-steered to healthy
  // replicas; with health off, the gray primary keeps serving its share.
  core::RunMetrics steered = bed.RunWorkload(fg, spec, 0, sec(1), "steered");
  out.gray_read_p99_us = static_cast<double>(steered.read_latency_us.Percentile(99));
  return out;
}

struct SloResult {
  double quiet_read_p99_us = 0;
  double storm_read_p99_us = 0;
  double recovery_s = 0;
  bool converged = false;
  uint64_t violations = 0;
  uint64_t recovery_steps = 0;
  size_t victim_chunks = 0;
};

// Phase B: hybrid cluster, QoS + SLO on; crash an HDD backup of a victim
// disk so its chunks re-replicate from the SSD primaries the foreground
// tenant reads from, and let the controller defend the target.
SloResult RunSloStorm() {
  core::SystemProfile profile = core::UrsaHybridProfile(3);
  profile.name = "slo-on";
  profile.cluster.qos.enabled = true;
  profile.cluster.chunk_size = 16 * kMiB;  // smaller chunks -> more victims
  profile.cluster.slo.enabled = true;
  profile.cluster.slo.fg_p99_target = kSloTarget;
  core::TestBed bed(profile);
  auto& sim = bed.sim();
  auto& master = bed.cluster().master();

  client::VirtualDisk* fg = bed.NewDisk(kDiskSize);  // disk 1
  bed.NewDisk(8ull * kGiB);                          // disk 2 (victim)

  core::WorkloadSpec spec;
  spec.block_size = 4 * kKiB;
  spec.queue_depth = 8;
  spec.read_fraction = 0.5;

  SloResult out;
  core::RunMetrics quiet = bed.RunWorkload(fg, spec, msec(300), sec(1), "quiet");
  out.quiet_read_p99_us = static_cast<double>(quiet.read_latency_us.Percentile(99));

  const cluster::DiskMeta* victim_meta = *master.GetDisk(2);
  cluster::ServerId failed = victim_meta->chunks[0].replicas[1].server;  // HDD backup
  std::vector<storage::ChunkId> victims;
  for (const auto& layout : victim_meta->chunks) {
    for (const auto& r : layout.replicas) {
      if (r.server == failed) {
        victims.push_back(layout.chunk);
        break;
      }
    }
  }
  out.victim_chunks = victims.size();
  bed.cluster().CrashServer(failed);
  Nanos crash_time = sim.Now();
  std::function<void(storage::ChunkId)> report = [&](storage::ChunkId chunk) {
    master.ReportReplicaFailure(chunk, failed, [&, chunk](const Status& s) {
      if (!s.ok()) {
        sim.After(msec(100), [&, chunk]() { report(chunk); });
      }
    });
  };
  for (storage::ChunkId chunk : victims) {
    report(chunk);
  }

  auto healed = [&master, failed]() {
    const cluster::DiskMeta* meta = *master.GetDisk(2);
    for (const auto& layout : meta->chunks) {
      for (const auto& r : layout.replicas) {
        if (r.server == failed) {
          return false;
        }
      }
    }
    return true;
  };
  Nanos heal_time = 0;
  auto poll = std::make_shared<std::function<void()>>();
  *poll = [&sim, &heal_time, healed, poll]() {
    if (healed()) {
      heal_time = sim.Now();
      return;
    }
    sim.After(msec(10), *poll);
  };
  sim.After(msec(10), *poll);

  core::RunMetrics storm = bed.RunWorkload(fg, spec, msec(100), sec(2), "storm");
  out.storm_read_p99_us = static_cast<double>(storm.read_latency_us.Percentile(99));

  for (int i = 0; i < 600 && heal_time == 0; ++i) {
    sim.RunUntil(sim.Now() + msec(50));
  }
  out.converged = heal_time != 0;
  out.recovery_s = out.converged ? ToSec(heal_time - crash_time) : 0;
  if (qos::SloMonitor* slo = bed.cluster().slo_monitor()) {
    out.violations = slo->violations();
    out.recovery_steps = slo->recovery_steps();
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Phase A: gray-SSD detection latency and steering win ===\n\n");
  DetectionResult off = RunDetectionMode(false);
  DetectionResult on = RunDetectionMode(true);

  core::Table table({"mode", "quiet read p99 (us)", "gray read p99 (us)", "detection (ms)"});
  for (const DetectionResult* r : {&off, &on}) {
    table.AddRow({r->name, core::Table::Int(r->quiet_read_p99_us),
                  core::Table::Int(r->gray_read_p99_us),
                  r->detection_ms < 0 ? std::string("-") : core::Table::Int(r->detection_ms)});
  }
  table.Print();

  double p99_improvement = on.gray_read_p99_us > 0 ? off.gray_read_p99_us / on.gray_read_p99_us : 0;
  bool detected_in_budget = on.detection_ms >= 0 && on.detection_ms <= ToMsec(kDetectionBudget);
  std::printf("\nDetection read-p99 improvement: %.2fx (gate: >= 2x)\n", p99_improvement);
  std::printf("Detection latency: %.0f ms (budget: %lld ms)\n", on.detection_ms,
              static_cast<long long>(ToMsec(kDetectionBudget)));

  std::printf("\n=== Phase B: SLO controller under a recovery storm ===\n\n");
  SloResult slo = RunSloStorm();
  std::printf("quiet read p99: %.0f us, storm read p99: %.0f us (target %lld us)\n",
              slo.quiet_read_p99_us, slo.storm_read_p99_us,
              static_cast<long long>(ToUsec(kSloTarget)));
  std::printf("controller: %llu violations, %llu recovery steps\n",
              static_cast<unsigned long long>(slo.violations),
              static_cast<unsigned long long>(slo.recovery_steps));
  std::printf("recovery: %s in %.2f s (%zu victim chunks)\n",
              slo.converged ? "converged" : "DID NOT CONVERGE", slo.recovery_s,
              slo.victim_chunks);

  bool slo_met = slo.storm_read_p99_us <= ToUsec(kSloTarget);
  bool ok = p99_improvement >= 2.0 && detected_in_budget && slo_met && slo.converged;
  std::printf("\nHealth-detection %s\n", ok ? "SHAPE-OK" : "SHAPE-MISMATCH");

  std::string json_path = core::MetricsJsonPath(argc, argv);
  if (json_path.empty()) {
    json_path = "BENCH_health_detection.json";
  }
  std::ofstream os(json_path);
  os << "{\"bench\":\"health_detection\""
     << ",\"quiet_read_p99_us_off\":" << off.quiet_read_p99_us
     << ",\"quiet_read_p99_us_on\":" << on.quiet_read_p99_us
     << ",\"gray_read_p99_us_off\":" << off.gray_read_p99_us
     << ",\"gray_read_p99_us_on\":" << on.gray_read_p99_us
     << ",\"detection_ms\":" << on.detection_ms
     << ",\"p99_improvement_detection\":" << p99_improvement
     << ",\"detection_within_budget\":" << (detected_in_budget ? 1 : 0)
     << ",\"storm_read_p99_us_slo\":" << slo.storm_read_p99_us
     << ",\"slo_target_us\":" << ToUsec(kSloTarget)
     << ",\"slo_violations\":" << slo.violations
     << ",\"slo_recovery_steps\":" << slo.recovery_steps
     << ",\"recovery_seconds_slo\":" << slo.recovery_s
     << ",\"slo_met\":" << (slo_met ? 1 : 0)
     << ",\"recovery_converged\":" << (slo.converged ? 1 : 0) << "}\n";
  std::printf("metrics written to %s\n", json_path.c_str());
  return 0;
}
