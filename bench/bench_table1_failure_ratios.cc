// Table 1: component failure ratios in Ursa's deployment.
//
// Paper: HDD 69.1%, SSD 4.0%, RAM 6.2%, Power 3.0%, CPU 2.6%, Other 15.1% —
// HDDs contribute nearly 70% of failures, an order of magnitude more than
// SSDs (§5.4). This harness runs the hazard-rate fleet model over a
// simulated multi-year deployment and reports the observed ratios.
#include <cstdio>

#include "src/cluster/failure_injector.h"
#include "src/core/metrics.h"

using namespace ursa;

int main() {
  std::printf("=== Table 1: failure ratios in deployment ===\n\n");

  const double kPaper[cluster::kNumComponentKinds] = {69.1, 4.0, 6.2, 3.0, 2.6, 15.1};

  Rng rng(20190325);
  cluster::FleetModel model;
  cluster::FleetFailureCounts counts =
      cluster::SimulateFleetFailures(model, /*machines=*/3000, /*years=*/2.0, &rng);

  core::Table table({"Component", "Failures", "Observed %", "Paper %"});
  bool ok = true;
  for (int k = 0; k < cluster::kNumComponentKinds; ++k) {
    auto kind = static_cast<cluster::ComponentKind>(k);
    double observed = 100.0 * counts.Ratio(kind);
    table.AddRow({cluster::ComponentKindName(kind),
                  std::to_string(counts.counts[k]),
                  core::Table::Num(observed, 1), core::Table::Num(kPaper[k], 1)});
    if (std::abs(observed - kPaper[k]) > 5.0) {
      ok = false;
    }
  }
  table.Print();

  double hdd = counts.Ratio(cluster::ComponentKind::kHdd);
  double ssd = counts.Ratio(cluster::ComponentKind::kSsd);
  std::printf("\nTotal failures: %llu over %d machine-years\n",
              static_cast<unsigned long long>(counts.total()), 3000 * 2);
  std::printf("HDD/SSD failure ratio: %.1fx (paper: ~17x)\n", hdd / ssd);
  std::printf("Table1 %s\n", ok && hdd / ssd > 8 ? "SHAPE-OK" : "SHAPE-MISMATCH");
  return 0;
}
