// §7 quantified: why Ursa chose replication over erasure coding.
//
// "Compared to replication, EC optimizes for capacity at the expense of I/O
// performance. Since (HDD) capacity is the least valuable resource in a
// hybrid architecture, we prefer Ursa to PariX."
//
// This bench measures, at the storage level on identical SSD device models:
//   * 3-way replication (one write per replica, all parallel)
//   * EC(4+2), read-modify-write partial writes (Sheepdog-style RMW cost)
//   * EC(4+2), parity logging (Chan et al.: sequential delta appends)
// for random 4 KB writes and for full-stripe writes, plus each scheme's
// capacity overhead — making the §7 trade-off explicit.
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/core/metrics.h"
#include "src/ec/ec_stripe_store.h"
#include "src/storage/ssd_model.h"

using namespace ursa;

namespace {

struct SchemeResult {
  std::string name;
  double small_iops;
  double small_lat_us;
  double overwrite_iops;  // hot 4 MB span: mostly overwrites
  double full_mbps;
  double capacity_overhead;
};

constexpr uint64_t kUnit = 64 * kKiB;
constexpr uint64_t kRows = 512;
constexpr Nanos kMeasure = sec(2);

// Closed-loop driver at qd16 over a generic async write function.
template <typename WriteFn>
std::pair<double, double> DriveSmallWrites(sim::Simulator* sim, WriteFn write, uint64_t span,
                                           uint64_t seed = 7) {
  Rng rng(seed);
  uint64_t completed = 0;
  Histogram lat;
  Nanos stop = sim->Now() + kMeasure;
  std::function<void()> issue = [&]() {
    if (sim->Now() >= stop) {
      return;
    }
    uint64_t offset = rng.Uniform((span - 4096) / 4096) * 4096;
    Nanos t0 = sim->Now();
    write(offset, 4096, [&, t0](const Status& s) {
      if (s.ok()) {
        ++completed;
        lat.Record(static_cast<int64_t>(ToUsec(sim->Now() - t0)));
      }
      issue();
    });
  };
  for (int i = 0; i < 16; ++i) {
    issue();
  }
  sim->RunUntil(stop + msec(100));
  return {static_cast<double>(completed) / ToSec(kMeasure), lat.Mean()};
}

template <typename WriteFn>
double DriveFullWrites(sim::Simulator* sim, WriteFn write, uint64_t stripe_bytes,
                       uint64_t span) {
  uint64_t bytes = 0;
  uint64_t cursor = 0;
  Nanos stop = sim->Now() + kMeasure;
  std::function<void()> issue = [&]() {
    if (sim->Now() >= stop) {
      return;
    }
    uint64_t offset = cursor % (span - stripe_bytes + stripe_bytes);
    if (offset + stripe_bytes > span) {
      cursor = 0;
      offset = 0;
    }
    cursor += stripe_bytes;
    write(offset, stripe_bytes, [&](const Status& s) {
      if (s.ok()) {
        bytes += stripe_bytes;
      }
      issue();
    });
  };
  for (int i = 0; i < 4; ++i) {
    issue();
  }
  sim->RunUntil(stop + msec(100));
  return static_cast<double>(bytes) / ToSec(kMeasure) / 1e6;
}

SchemeResult RunReplication() {
  sim::Simulator sim;
  std::vector<std::unique_ptr<storage::SsdModel>> ssds;
  for (int i = 0; i < 3; ++i) {
    storage::SsdParams p;
    p.capacity = kRows * kUnit * 4 + kMiB;
    ssds.push_back(std::make_unique<storage::SsdModel>(&sim, p));
  }
  uint64_t span = kRows * kUnit * 4;
  auto write = [&](uint64_t offset, uint64_t len, storage::IoCallback done) {
    auto joiner = std::make_shared<int>(3);
    auto shared = std::make_shared<storage::IoCallback>(std::move(done));
    for (auto& ssd : ssds) {
      ssd->Submit(storage::IoRequest{storage::IoType::kWrite, offset, len, nullptr, nullptr,
                                     false, [joiner, shared](const Status& s) {
                                       if (--*joiner == 0) {
                                         (*shared)(s);
                                       }
                                     }});
    }
  };
  SchemeResult r;
  r.name = "3-replication";
  std::tie(r.small_iops, r.small_lat_us) = DriveSmallWrites(&sim, write, span);
  r.overwrite_iops = DriveSmallWrites(&sim, write, 4 * kMiB, 11).first;
  r.full_mbps = DriveFullWrites(&sim, write, 4 * kUnit, span);
  r.capacity_overhead = 3.0;
  return r;
}

SchemeResult RunEc(ec::PartialWriteMode mode, const char* name) {
  sim::Simulator sim;
  ec::EcStripeConfig config;
  config.k = 4;
  config.m = 2;
  config.stripe_unit = kUnit;
  config.mode = mode;
  config.parity_log_bytes = 256 * kMiB;
  std::vector<std::unique_ptr<storage::SsdModel>> ssds;
  std::vector<storage::BlockDevice*> devices;
  for (int i = 0; i < 6; ++i) {
    storage::SsdParams p;
    p.capacity = kRows * kUnit + config.parity_log_bytes + kMiB;
    ssds.push_back(std::make_unique<storage::SsdModel>(&sim, p));
    devices.push_back(ssds.back().get());
  }
  ec::EcStripeStore store(&sim, devices, kRows, config);
  uint64_t span = store.logical_size();
  auto write = [&](uint64_t offset, uint64_t len, storage::IoCallback done) {
    store.Write(offset, len, nullptr, std::move(done));
  };
  SchemeResult r;
  r.name = name;
  std::tie(r.small_iops, r.small_lat_us) = DriveSmallWrites(&sim, write, span);
  // Hot 4 MB span: most writes are overwrites — PariX's speculative case.
  r.overwrite_iops = DriveSmallWrites(&sim, write, 4 * kMiB, 11).first;
  r.full_mbps = DriveFullWrites(&sim, write, 4 * kUnit, span);
  r.capacity_overhead = 6.0 / 4.0;
  return r;
}

}  // namespace

int main() {
  std::printf("=== Replication vs erasure coding (the paper's §7 trade-off) ===\n\n");

  std::vector<SchemeResult> results;
  results.push_back(RunReplication());
  results.push_back(RunEc(ec::PartialWriteMode::kReadModifyWrite, "EC(4+2) RMW"));
  results.push_back(RunEc(ec::PartialWriteMode::kParityLogging, "EC(4+2) parity-log"));
  results.push_back(RunEc(ec::PartialWriteMode::kParixSpeculative, "EC(4+2) PariX"));

  core::Table table({"Scheme", "4K write IOPS", "4K write us", "4K overwrite IOPS",
                     "full-stripe MB/s", "capacity x"});
  for (const SchemeResult& r : results) {
    table.AddRow({r.name, core::Table::Int(r.small_iops), core::Table::Num(r.small_lat_us, 0),
                  core::Table::Int(r.overwrite_iops), core::Table::Int(r.full_mbps),
                  core::Table::Num(r.capacity_overhead, 2)});
  }
  table.Print();

  bool ok = true;
  auto check = [&ok](bool cond, const char* what) {
    std::printf("  %-64s %s\n", what, cond ? "OK" : "MISMATCH");
    ok = ok && cond;
  };
  std::printf("\n--- shape checks (paper, §7) ---\n");
  check(results[0].small_iops > 1.5 * results[1].small_iops,
        "replication beats EC-RMW on random small writes");
  check(results[2].small_iops > results[1].small_iops,
        "parity logging improves on RMW partial writes");
  check(results[3].overwrite_iops > 1.2 * results[1].overwrite_iops,
        "PariX speculation beats RMW on overwrite-heavy writes");
  check(results[0].small_lat_us < results[1].small_lat_us,
        "replication's small-write latency is lower than EC-RMW's");
  check(results[1].capacity_overhead < results[0].capacity_overhead,
        "EC halves the capacity overhead (1.5x vs 3x)");
  std::printf("\n(EC optimizes capacity at the expense of small-write I/O — and HDD\n");
  std::printf(" capacity is the cheapest resource in the hybrid design, hence Ursa\n");
  std::printf(" chose replication + journals over EC/PariX — though PariX narrows the\n");
  std::printf(" overwrite gap, exactly its design goal.)\n");
  std::printf("EC %s\n", ok ? "SHAPE-OK" : "SHAPE-MISMATCH");
  return 0;
}
