// §7 quantified: why Ursa chose replication over erasure coding.
//
// "Compared to replication, EC optimizes for capacity at the expense of I/O
// performance. Since (HDD) capacity is the least valuable resource in a
// hybrid architecture, we prefer Ursa to PariX."
//
// This bench measures, at the storage level on identical SSD device models:
//   * 3-way replication (one write per replica, all parallel)
//   * EC(4+2), read-modify-write partial writes (Sheepdog-style RMW cost)
//   * EC(4+2), parity logging (Chan et al.: sequential delta appends)
// for random 4 KB writes and for full-stripe writes, plus each scheme's
// capacity overhead — making the §7 trade-off explicit.
//
// A second section benchmarks the GF(256) kernel tiers themselves (real
// wall-clock, no sim): single multiply-accumulate and fused multi-parity
// encode per dispatch tier (scalar / portable / ssse3 / avx2), plus fused
// reconstruction — the data-plane cost EC adds over replication's memcpy.
// Emits BENCH_ec_comparison.json (or --metrics-json=<path>) for the CI
// bench-smoke regression gate.
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/core/metrics.h"
#include "src/ec/ec_stripe_store.h"
#include "src/ec/gf256_kernels.h"
#include "src/ec/reed_solomon.h"
#include "src/storage/ssd_model.h"

using namespace ursa;

namespace {

struct SchemeResult {
  std::string name;
  double small_iops;
  double small_lat_us;
  double overwrite_iops;  // hot 4 MB span: mostly overwrites
  double full_mbps;
  double capacity_overhead;
};

constexpr uint64_t kUnit = 64 * kKiB;
constexpr uint64_t kRows = 512;
constexpr Nanos kMeasure = sec(2);

// Closed-loop driver at qd16 over a generic async write function.
template <typename WriteFn>
std::pair<double, double> DriveSmallWrites(sim::Simulator* sim, WriteFn write, uint64_t span,
                                           uint64_t seed = 7) {
  Rng rng(seed);
  uint64_t completed = 0;
  Histogram lat;
  Nanos stop = sim->Now() + kMeasure;
  std::function<void()> issue = [&]() {
    if (sim->Now() >= stop) {
      return;
    }
    uint64_t offset = rng.Uniform((span - 4096) / 4096) * 4096;
    Nanos t0 = sim->Now();
    write(offset, 4096, [&, t0](const Status& s) {
      if (s.ok()) {
        ++completed;
        lat.Record(static_cast<int64_t>(ToUsec(sim->Now() - t0)));
      }
      issue();
    });
  };
  for (int i = 0; i < 16; ++i) {
    issue();
  }
  sim->RunUntil(stop + msec(100));
  return {static_cast<double>(completed) / ToSec(kMeasure), lat.Mean()};
}

template <typename WriteFn>
double DriveFullWrites(sim::Simulator* sim, WriteFn write, uint64_t stripe_bytes,
                       uint64_t span) {
  uint64_t bytes = 0;
  uint64_t cursor = 0;
  Nanos stop = sim->Now() + kMeasure;
  std::function<void()> issue = [&]() {
    if (sim->Now() >= stop) {
      return;
    }
    uint64_t offset = cursor % (span - stripe_bytes + stripe_bytes);
    if (offset + stripe_bytes > span) {
      cursor = 0;
      offset = 0;
    }
    cursor += stripe_bytes;
    write(offset, stripe_bytes, [&](const Status& s) {
      if (s.ok()) {
        bytes += stripe_bytes;
      }
      issue();
    });
  };
  for (int i = 0; i < 4; ++i) {
    issue();
  }
  sim->RunUntil(stop + msec(100));
  return static_cast<double>(bytes) / ToSec(kMeasure) / 1e6;
}

SchemeResult RunReplication() {
  sim::Simulator sim;
  std::vector<std::unique_ptr<storage::SsdModel>> ssds;
  for (int i = 0; i < 3; ++i) {
    storage::SsdParams p;
    p.capacity = kRows * kUnit * 4 + kMiB;
    ssds.push_back(std::make_unique<storage::SsdModel>(&sim, p));
  }
  uint64_t span = kRows * kUnit * 4;
  auto write = [&](uint64_t offset, uint64_t len, storage::IoCallback done) {
    auto joiner = std::make_shared<int>(3);
    auto shared = std::make_shared<storage::IoCallback>(std::move(done));
    for (auto& ssd : ssds) {
      ssd->Submit(storage::IoRequest{storage::IoType::kWrite, offset, len, nullptr, nullptr,
                                     false, [joiner, shared](const Status& s) {
                                       if (--*joiner == 0) {
                                         (*shared)(s);
                                       }
                                     }});
    }
  };
  SchemeResult r;
  r.name = "3-replication";
  std::tie(r.small_iops, r.small_lat_us) = DriveSmallWrites(&sim, write, span);
  r.overwrite_iops = DriveSmallWrites(&sim, write, 4 * kMiB, 11).first;
  r.full_mbps = DriveFullWrites(&sim, write, 4 * kUnit, span);
  r.capacity_overhead = 3.0;
  return r;
}

SchemeResult RunEc(ec::PartialWriteMode mode, const char* name) {
  sim::Simulator sim;
  ec::EcStripeConfig config;
  config.k = 4;
  config.m = 2;
  config.stripe_unit = kUnit;
  config.mode = mode;
  config.parity_log_bytes = 256 * kMiB;
  std::vector<std::unique_ptr<storage::SsdModel>> ssds;
  std::vector<storage::BlockDevice*> devices;
  for (int i = 0; i < 6; ++i) {
    storage::SsdParams p;
    p.capacity = kRows * kUnit + config.parity_log_bytes + kMiB;
    ssds.push_back(std::make_unique<storage::SsdModel>(&sim, p));
    devices.push_back(ssds.back().get());
  }
  ec::EcStripeStore store(&sim, devices, kRows, config);
  uint64_t span = store.logical_size();
  auto write = [&](uint64_t offset, uint64_t len, storage::IoCallback done) {
    store.Write(offset, len, nullptr, std::move(done));
  };
  SchemeResult r;
  r.name = name;
  std::tie(r.small_iops, r.small_lat_us) = DriveSmallWrites(&sim, write, span);
  // Hot 4 MB span: most writes are overwrites — PariX's speculative case.
  r.overwrite_iops = DriveSmallWrites(&sim, write, 4 * kMiB, 11).first;
  r.full_mbps = DriveFullWrites(&sim, write, 4 * kUnit, span);
  r.capacity_overhead = 6.0 / 4.0;
  return r;
}

// ---------------------------------------------------------------------------
// GF(256) kernel microbenchmarks (wall-clock)
// ---------------------------------------------------------------------------

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

constexpr std::array<ec::GfKernelTier, 4> kAllTiers = {
    ec::GfKernelTier::kScalar, ec::GfKernelTier::kPortable, ec::GfKernelTier::kSsse3,
    ec::GfKernelTier::kAvx2};

// Iteration counts per tier: scalar runs ~1-2 orders of magnitude slower, so
// it gets fewer passes for comparable (and still stable) wall time.
int PassesFor(ec::GfKernelTier tier, int scalar_passes, int fast_passes) {
  return tier == ec::GfKernelTier::kScalar ? scalar_passes : fast_passes;
}

struct TierGbps {
  std::array<double, 4> gbps = {0, 0, 0, 0};  // indexed by tier enum; 0 = n/a
  double at(ec::GfKernelTier t) const { return gbps[static_cast<size_t>(t)]; }
};

// out ^= c * in over a shard-sized buffer: the single-destination primitive
// (parity RMW / parity-log delta scaling path).
TierGbps BenchMulAccum(size_t len) {
  Rng rng(11);
  std::vector<uint8_t> in(len);
  std::vector<uint8_t> out(len, 0);
  for (auto& b : in) {
    b = static_cast<uint8_t>(rng.Uniform(256));
  }
  ec::GfMulTable table;
  ec::GfBuildMulTable(0x57, &table);
  TierGbps result;
  for (ec::GfKernelTier tier : kAllTiers) {
    if (!ec::GfKernelTierAvailable(tier)) {
      continue;
    }
    ec::GfMulAccumWith(tier, table, 0x57, in.data(), out.data(), len);  // warm up
    int passes = PassesFor(tier, 256, 4096);
    auto t0 = Clock::now();
    for (int i = 0; i < passes; ++i) {
      ec::GfMulAccumWith(tier, table, 0x57, in.data(), out.data(), len);
    }
    auto t1 = Clock::now();
    result.gbps[static_cast<size_t>(tier)] =
        static_cast<double>(len) * passes / Seconds(t0, t1) / 1e9;
  }
  return result;
}

// Full fused encode: k data shards -> m parities in one EncodeWith call.
// Throughput is counted in DATA bytes (k * len per encode), the figure that
// compares against replication's per-byte cost.
TierGbps BenchEncode(int k, int m, size_t len) {
  Rng rng(13);
  std::vector<std::vector<uint8_t>> shards(k + m, std::vector<uint8_t>(len));
  std::vector<const uint8_t*> data(k);
  std::vector<uint8_t*> parity(m);
  for (int d = 0; d < k; ++d) {
    for (auto& b : shards[d]) {
      b = static_cast<uint8_t>(rng.Uniform(256));
    }
    data[d] = shards[d].data();
  }
  for (int p = 0; p < m; ++p) {
    parity[p] = shards[k + p].data();
  }
  ec::ReedSolomon rs(k, m);
  TierGbps result;
  for (ec::GfKernelTier tier : kAllTiers) {
    if (!ec::GfKernelTierAvailable(tier)) {
      continue;
    }
    rs.EncodeWith(tier, data, parity, len);  // warm up
    int passes = PassesFor(tier, 48, 768);
    auto t0 = Clock::now();
    for (int i = 0; i < passes; ++i) {
      rs.EncodeWith(tier, data, parity, len);
    }
    auto t1 = Clock::now();
    result.gbps[static_cast<size_t>(tier)] =
        static_cast<double>(len) * k * passes / Seconds(t0, t1) / 1e9;
  }
  return result;
}

// Fused reconstruction of the m worst-case losses (first m data shards) from
// the k survivors, through a precompiled DecodePlan. Throughput counts the
// k*len survivor bytes streamed per call, matching the encode accounting.
TierGbps BenchReconstruct(int k, int m, size_t len) {
  Rng rng(17);
  std::vector<std::vector<uint8_t>> shards(k + m, std::vector<uint8_t>(len));
  std::vector<const uint8_t*> data(k);
  std::vector<uint8_t*> parity(m);
  for (int d = 0; d < k; ++d) {
    for (auto& b : shards[d]) {
      b = static_cast<uint8_t>(rng.Uniform(256));
    }
    data[d] = shards[d].data();
  }
  for (int p = 0; p < m; ++p) {
    parity[p] = shards[k + p].data();
  }
  ec::ReedSolomon rs(k, m);
  rs.Encode(data, parity, len);

  std::vector<bool> present(k + m, true);
  std::vector<int> wanted;
  for (int s = 0; s < m; ++s) {
    present[s] = false;
    wanted.push_back(s);
  }
  ec::ReedSolomon::DecodePlan plan;
  if (!rs.PlanReconstruct(present, wanted, &plan).ok()) {
    return {};
  }
  std::vector<const uint8_t*> view(k + m, nullptr);
  for (int s = m; s < k + m; ++s) {
    view[s] = shards[s].data();
  }
  std::vector<std::vector<uint8_t>> rebuilt(m, std::vector<uint8_t>(len));
  std::vector<uint8_t*> out(k + m, nullptr);
  for (int s = 0; s < m; ++s) {
    out[s] = rebuilt[s].data();
  }
  TierGbps result;
  for (ec::GfKernelTier tier : kAllTiers) {
    if (!ec::GfKernelTierAvailable(tier)) {
      continue;
    }
    rs.ReconstructWith(plan, view, out, len, tier);  // warm up
    int passes = PassesFor(tier, 48, 768);
    auto t0 = Clock::now();
    for (int i = 0; i < passes; ++i) {
      rs.ReconstructWith(plan, view, out, len, tier);
    }
    auto t1 = Clock::now();
    result.gbps[static_cast<size_t>(tier)] =
        static_cast<double>(len) * k * passes / Seconds(t0, t1) / 1e9;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Replication vs erasure coding (the paper's §7 trade-off) ===\n\n");

  std::vector<SchemeResult> results;
  results.push_back(RunReplication());
  results.push_back(RunEc(ec::PartialWriteMode::kReadModifyWrite, "EC(4+2) RMW"));
  results.push_back(RunEc(ec::PartialWriteMode::kParityLogging, "EC(4+2) parity-log"));
  results.push_back(RunEc(ec::PartialWriteMode::kParixSpeculative, "EC(4+2) PariX"));

  core::Table table({"Scheme", "4K write IOPS", "4K write us", "4K overwrite IOPS",
                     "full-stripe MB/s", "capacity x"});
  for (const SchemeResult& r : results) {
    table.AddRow({r.name, core::Table::Int(r.small_iops), core::Table::Num(r.small_lat_us, 0),
                  core::Table::Int(r.overwrite_iops), core::Table::Int(r.full_mbps),
                  core::Table::Num(r.capacity_overhead, 2)});
  }
  table.Print();

  bool ok = true;
  auto check = [&ok](bool cond, const char* what) {
    std::printf("  %-64s %s\n", what, cond ? "OK" : "MISMATCH");
    ok = ok && cond;
  };
  std::printf("\n--- shape checks (paper, §7) ---\n");
  check(results[0].small_iops > 1.5 * results[1].small_iops,
        "replication beats EC-RMW on random small writes");
  check(results[2].small_iops > results[1].small_iops,
        "parity logging improves on RMW partial writes");
  check(results[3].overwrite_iops > 1.2 * results[1].overwrite_iops,
        "PariX speculation beats RMW on overwrite-heavy writes");
  check(results[0].small_lat_us < results[1].small_lat_us,
        "replication's small-write latency is lower than EC-RMW's");
  check(results[1].capacity_overhead < results[0].capacity_overhead,
        "EC halves the capacity overhead (1.5x vs 3x)");
  std::printf("\n(EC optimizes capacity at the expense of small-write I/O — and HDD\n");
  std::printf(" capacity is the cheapest resource in the hybrid design, hence Ursa\n");
  std::printf(" chose replication + journals over EC/PariX — though PariX narrows the\n");
  std::printf(" overwrite gap, exactly its design goal.)\n");

  // ---- GF(256) kernel tiers (wall-clock) ----
  std::printf("\n=== GF(256) kernel tiers (64 KiB shards) ===\n\n");
  constexpr size_t kShard = 64 * 1024;
  TierGbps mul = BenchMulAccum(kShard);
  TierGbps enc42 = BenchEncode(4, 2, kShard);
  TierGbps rec42 = BenchReconstruct(4, 2, kShard);

  double enc_scalar = enc42.at(ec::GfKernelTier::kScalar);
  core::Table kt({"tier", "mul-accum GB/s", "encode(4+2) GB/s", "reconstruct(4+2) GB/s",
                  "encode vs scalar"});
  for (ec::GfKernelTier tier : kAllTiers) {
    if (!ec::GfKernelTierAvailable(tier)) {
      kt.AddRow({ec::GfKernelTierName(tier), "-", "-", "-", "(unavailable)"});
      continue;
    }
    kt.AddRow({ec::GfKernelTierName(tier), core::Table::Num(mul.at(tier), 2),
               core::Table::Num(enc42.at(tier), 2), core::Table::Num(rec42.at(tier), 2),
               core::Table::Num(enc42.at(tier) / enc_scalar, 1) + "x"});
  }
  kt.Print();
  ec::GfKernelTier best = ec::GfKernelBestTier();
  std::printf("active dispatch: %s\n", ec::GfKernelTierName(best));

  // Fused encode across geometries, best tier only: per-byte cost is roughly
  // flat in m because each data block is loaded once for all m parities.
  core::Table gt({"geometry", "encode GB/s (best tier)"});
  for (auto [k, m] : {std::pair{4, 2}, std::pair{6, 3}, std::pair{10, 4}}) {
    TierGbps g = BenchEncode(k, m, kShard);
    gt.AddRow({"EC(" + std::to_string(k) + "+" + std::to_string(m) + ")",
               core::Table::Num(g.at(best), 2)});
  }
  gt.Print();

  double enc_best = enc42.at(best);
  double enc_portable = enc42.at(ec::GfKernelTier::kPortable);
  double rec_portable = rec42.at(ec::GfKernelTier::kPortable);
  double rec_scalar = rec42.at(ec::GfKernelTier::kScalar);

  std::printf("\n--- kernel shape checks ---\n");
  check(enc_portable > enc_scalar, "portable slicing beats the scalar log/exp reference");
  check(rec_portable > rec_scalar, "portable reconstruction beats scalar");
  if (ec::GfKernelTierAvailable(ec::GfKernelTier::kAvx2)) {
    check(enc42.at(ec::GfKernelTier::kAvx2) >= 8.0 * enc_scalar,
          "AVX2 fused encode is >= 8x scalar");
  }
  if (ec::GfKernelTierAvailable(ec::GfKernelTier::kSsse3)) {
    check(enc42.at(ec::GfKernelTier::kSsse3) > enc_portable,
          "SSSE3 pshufb beats the portable slicer");
  }

  std::string json_path = core::MetricsJsonPath(argc, argv);
  if (json_path.empty()) {
    json_path = "BENCH_ec_comparison.json";
  }
  std::ofstream os(json_path);
  os << "{\"bench\":\"ec_comparison\""
     << ",\"ec_encode_scalar_gbps\":" << enc_scalar
     << ",\"ec_encode_portable_gbps\":" << enc_portable
     << ",\"ec_encode_ssse3_gbps\":" << enc42.at(ec::GfKernelTier::kSsse3)
     << ",\"ec_encode_avx2_gbps\":" << enc42.at(ec::GfKernelTier::kAvx2)
     << ",\"ec_encode_best_vs_scalar\":" << (enc_best / enc_scalar)
     << ",\"ec_encode_portable_vs_scalar\":" << (enc_portable / enc_scalar)
     << ",\"ec_mulaccum_portable_gbps\":" << mul.at(ec::GfKernelTier::kPortable)
     << ",\"ec_reconstruct_portable_gbps\":" << rec_portable
     << ",\"ec_reconstruct_portable_vs_scalar\":" << (rec_portable / rec_scalar)
     << ",\"_ec_kernel_best\":\"" << ec::GfKernelTierName(best) << "\""
     << ",\"_repl_small_iops\":" << results[0].small_iops
     << ",\"_ec_rmw_small_iops\":" << results[1].small_iops << "}\n";
  std::printf("\nmetrics written to %s\n", json_path.c_str());

  std::printf("EC %s\n", ok ? "SHAPE-OK" : "SHAPE-MISMATCH");
  return 0;
}
