// Figures 15 & 16: production latency comparison and Ursa's latency
// distribution.
//
// Fig. 15 (paper): a 2-vCPU VM probes I/O latency every 2 seconds for two
// days on each service; Ursa's SSD-HDD-hybrid latencies are comparable to
// the SSD-only commercial services (mean / p1 / p99 shown). We measure Ursa
// from the simulated cluster under light background load; AWS and QCloud are
// modelled as lognormal fits with the published SLA-class latency floors
// (DESIGN.md documents this substitution — a fair measurement against real
// clouds is impossible offline, and the paper itself calls its comparison
// not "completely fair").
// Fig. 16 (paper): PDF and CDF of Ursa's probe latency, body ~100-600 us.
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/core/system.h"

using namespace ursa;

namespace {

struct LatencySummary {
  double mean, p1, p99;
};

LatencySummary Summarize(const Histogram& h) {
  return {h.Mean(), static_cast<double>(h.Percentile(1)),
          static_cast<double>(h.Percentile(99))};
}

// Commercial-cloud latency model: lognormal body + heavy p99 tail from
// multi-tenant interference ("overselling", §6.5).
Histogram CloudModel(double median_us, double sigma, double tail_boost, uint64_t seed,
                     int samples) {
  Histogram h;
  Rng rng(seed);
  for (int i = 0; i < samples; ++i) {
    double v = rng.Lognormal(std::log(median_us), sigma);
    if (rng.Bernoulli(0.01)) {
      v *= tail_boost;  // multi-tenant tail
    }
    h.Record(static_cast<int64_t>(v));
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Figure 15: public-cloud latency comparison ===\n\n");

  // Ursa: measured from the simulated cluster; probes at qd1, 4K, mixed 1:1.
  // Every probe is traced (sample_every=1) so the per-stage breakdown below
  // decomposes the same requests the figure summarizes.
  Histogram ursa_read;
  Histogram ursa_write;
  std::string breakdown_table;
  double read_recon_err = 0;
  double write_recon_err = 0;
  uint64_t spans = 0;
  {
    core::TestBed bed(core::UrsaHybridProfile(3));
    bed.EnableTracing(1);
    bed.EnableSampling(msec(100));
    auto* disk = bed.NewDisk(4ull * kGiB);
    core::WorkloadSpec spec;
    spec.block_size = 4 * kKiB;
    spec.queue_depth = 1;
    spec.read_fraction = 0.5;
    core::RunMetrics m = bed.RunWorkload(disk, spec, msec(200), sec(8), "probe");
    ursa_read = m.read_latency_us;
    ursa_write = m.write_latency_us;
    bed.StopSampling();
    breakdown_table = bed.tracer().BreakdownTable();
    read_recon_err = bed.tracer().reads().ReconciliationError();
    write_recon_err = bed.tracer().writes().ReconciliationError();
    spans = bed.tracer().spans_finished();
    bed.DumpMetricsJson(core::MetricsJsonPath(argc, argv));
  }

  constexpr int kProbes = 86400;  // 2 days at one probe per 2 s
  Histogram aws_read = CloudModel(450, 0.40, 6.0, 11, kProbes);
  Histogram aws_write = CloudModel(650, 0.45, 6.0, 12, kProbes);
  Histogram qcloud_read = CloudModel(550, 0.45, 7.0, 13, kProbes);
  Histogram qcloud_write = CloudModel(800, 0.50, 7.0, 14, kProbes);

  core::Table table({"Service", "op", "mean us", "p1 us", "p99 us"});
  auto add = [&table](const char* name, const char* op, const Histogram& h) {
    LatencySummary s = Summarize(h);
    table.AddRow({name, op, core::Table::Num(s.mean, 0), core::Table::Num(s.p1, 0),
                  core::Table::Num(s.p99, 0)});
  };
  add("Ursa (hybrid)", "read", ursa_read);
  add("Ursa (hybrid)", "write", ursa_write);
  add("AWS (model)", "read", aws_read);
  add("AWS (model)", "write", aws_write);
  add("QCloud (model)", "read", qcloud_read);
  add("QCloud (model)", "write", qcloud_write);
  table.Print();

  std::printf("\n=== Figure 16: PDF & CDF of Ursa I/O latency (read+write) ===\n\n");
  Histogram combined;
  combined.Merge(ursa_read);
  combined.Merge(ursa_write);
  core::Table pdf({"latency us", "PDF", "CDF"});
  double cum = 0;
  for (const auto& [center, mass] : combined.Pdf(24)) {
    cum += mass;
    pdf.AddRow({core::Table::Num(center, 0), core::Table::Num(mass, 4),
                core::Table::Num(cum, 4)});
  }
  pdf.Print();

  std::printf("\n=== Latency decomposition (traced spans: %llu) ===\n\n",
              static_cast<unsigned long long>(spans));
  std::printf("%s", breakdown_table.c_str());

  bool ok = true;
  auto check = [&ok](bool cond, const char* what) {
    std::printf("  %-64s %s\n", what, cond ? "OK" : "MISMATCH");
    ok = ok && cond;
  };
  std::printf("\n--- shape checks (paper) ---\n");
  LatencySummary ur = Summarize(ursa_read);
  LatencySummary uw = Summarize(ursa_write);
  LatencySummary ar = Summarize(aws_read);
  check(ur.mean > 150 && ur.mean < 700, "Ursa read mean in the commercial band");
  check(uw.mean > 200 && uw.mean < 900, "Ursa write mean in the commercial band");
  check(ur.mean < 1.8 * ar.mean, "hybrid Ursa comparable to SSD-only clouds");
  check(combined.Percentile(5) > 100 && combined.Percentile(95) < 700,
        "latency body within ~100-600 us (Fig. 16)");
  check(spans > 1000, "tracer sampled the probe stream");
  check(read_recon_err <= 0.10, "read stage medians reconcile with e2e p50 (<=10%)");
  check(write_recon_err <= 0.10, "write stage medians reconcile with e2e p50 (<=10%)");
  std::printf("Fig15/16 %s\n", ok ? "SHAPE-OK" : "SHAPE-MISMATCH");
  return 0;
}
