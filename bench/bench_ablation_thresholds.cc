// Ablations of the design choices §3.2 calls out (beyond the paper's
// headline figures):
//
//   A. journal-bypass threshold Tj — "larger thresholds lead to heavier use
//      of journals but higher overall backup performance": sweep Tj for a
//      32 KB random-write workload (journaled when Tj >= 32K, bypassed to
//      HDD otherwise);
//   B. client-directed threshold Tc — tiny-write latency with and without
//      client-directed replication (paper: reduces latency of tiny writes);
//   C. journal placement — primary journal on a co-located SSD vs on the
//      backup HDD itself (paper: SSD placement keeps replay continuous
//      without disturbing the arm);
//   D. index level-0 merge threshold — insert cost vs memory of the
//      two-level index (§3.3's background-merge design).
#include <chrono>
#include <cstdio>

#include "src/common/rng.h"
#include "src/core/system.h"
#include "src/index/range_index.h"

using namespace ursa;

int main() {
  std::printf("=== Ablations: Tj, Tc, journal placement, index merge threshold ===\n\n");

  bool ok = true;
  auto check = [&ok](bool cond, const char* what) {
    std::printf("  %-64s %s\n", what, cond ? "OK" : "MISMATCH");
    ok = ok && cond;
  };

  // --- A: journal-bypass threshold Tj, 32 KB random writes ---
  std::printf("--- (A) Tj sweep: random 32KB writes, qd16 ---\n");
  core::Table a({"Tj", "Write IOPS", "journaled", "bypassed"});
  double tj_iops[3];
  int ti = 0;
  for (uint64_t tj : {16 * kKiB, 64 * kKiB, 256 * kKiB}) {
    core::SystemProfile profile = core::UrsaHybridProfile(3);
    profile.cluster.journal.bypass_threshold = tj;
    core::TestBed bed(profile);
    auto* disk = bed.NewDisk(4ull * kGiB);
    core::WorkloadSpec spec;
    spec.block_size = 32 * kKiB;
    spec.queue_depth = 16;
    spec.read_fraction = 0.0;
    core::RunMetrics m = bed.RunWorkload(disk, spec, msec(300), sec(2), "tj");
    uint64_t journaled = 0;
    uint64_t bypassed = 0;
    for (const auto* jm : bed.cluster().journal_managers()) {
      journaled += jm->stats().journaled_writes;
      bypassed += jm->stats().bypassed_writes;
    }
    tj_iops[ti++] = m.write_iops();
    a.AddRow({std::to_string(tj / 1024) + "K", core::Table::Int(m.write_iops()),
              std::to_string(journaled), std::to_string(bypassed)});
  }
  a.Print();
  check(tj_iops[1] > 2 * tj_iops[0], "Tj=64K (journaled) >> Tj=16K (bypassed to HDD)");

  // --- B: client-directed threshold Tc, 4 KB write latency ---
  std::printf("\n--- (B) Tc: 4KB write latency, client-directed vs primary-driven ---\n");
  core::Table b({"Replication", "Write mean us", "Write p99 us"});
  double lat[2];
  for (int mode = 0; mode < 2; ++mode) {
    core::SystemProfile profile = core::UrsaHybridProfile(3);
    profile.client.client_directed = mode == 1;
    core::TestBed bed(profile);
    auto* disk = bed.NewDisk(4ull * kGiB);
    core::WorkloadSpec spec;
    spec.block_size = 4 * kKiB;
    spec.queue_depth = 1;
    spec.read_fraction = 0.0;
    core::RunMetrics m = bed.RunWorkload(disk, spec, msec(300), sec(2), "tc");
    lat[mode] = m.write_latency_us.Mean();
    b.AddRow({mode == 1 ? "client-directed (Tc=8K)" : "primary-driven",
              core::Table::Num(m.write_latency_us.Mean(), 0),
              core::Table::Num(static_cast<double>(m.write_latency_us.Percentile(99)), 0)});
  }
  b.Print();
  check(lat[1] < lat[0], "client-directed replication lowers tiny-write latency");

  // --- C: journal placement, sustained 4 KB random writes ---
  std::printf("\n--- (C) journal placement: SSD vs backup HDD ---\n");
  core::Table c({"Journal placement", "Write IOPS", "Write p99 us"});
  double placement_iops[2];
  for (int on_ssd = 1; on_ssd >= 0; --on_ssd) {
    core::SystemProfile profile = core::UrsaHybridProfile(3);
    profile.cluster.journal_primary_on_ssd = on_ssd == 1;
    profile.cluster.hdd_journal_bytes = 16 * kGiB;
    core::TestBed bed(profile);
    auto* disk = bed.NewDisk(4ull * kGiB);
    core::WorkloadSpec spec;
    spec.block_size = 4 * kKiB;
    spec.queue_depth = 16;
    spec.read_fraction = 0.0;
    core::RunMetrics m = bed.RunWorkload(disk, spec, msec(300), sec(3), "placement");
    placement_iops[on_ssd] = m.write_iops();
    c.AddRow({on_ssd == 1 ? "co-located SSD" : "backup HDD",
              core::Table::Int(m.write_iops()),
              core::Table::Num(static_cast<double>(m.write_latency_us.Percentile(99)), 0)});
  }
  c.Print();
  check(placement_iops[1] > placement_iops[0],
        "SSD-placed journals beat HDD-placed journals");

  // --- D: index merge threshold (real data structure) ---
  std::printf("\n--- (D) index level-0 merge threshold: insert rate & memory ---\n");
  core::Table d({"Merge threshold", "Inserts/s", "Memory bytes", "array entries"});
  for (size_t threshold : {size_t{256}, size_t{8192}, size_t{1} << 30}) {
    index::RangeIndex idx(threshold);
    Rng rng(5);
    constexpr size_t kN = 300000;
    auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < kN; ++i) {
      idx.Insert(static_cast<uint32_t>(rng.Uniform((1u << 20) - 64)),
                 static_cast<uint32_t>(rng.UniformRange(1, 64)), rng.Uniform(1u << 28));
    }
    auto t1 = std::chrono::steady_clock::now();
    double rate = kN / std::chrono::duration<double>(t1 - t0).count();
    d.AddRow({threshold > (size_t{1} << 29) ? "unbounded (tree only)"
                                            : std::to_string(threshold),
              core::Table::Int(rate), std::to_string(idx.MemoryBytes()),
              std::to_string(idx.array_size())});
  }
  d.Print();

  std::printf("\nAblation %s\n", ok ? "SHAPE-OK" : "SHAPE-MISMATCH");
  return 0;
}
