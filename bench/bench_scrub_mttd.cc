// Scrub MTTD benchmark (see DESIGN.md "Background scrub & recovery
// admission"): how fast the background scrubber finds latent at-rest
// corruption, and what continuous sweeping costs the foreground tail.
//
// Phase A (MTTD, hybrid cluster): a small disk is materialized with real
// payload bytes and journal replay is drained so the data sits at rest in
// the chunk stores. One byte of a backup replica is then flipped behind the
// journal's back — no CRC-carrying record covers it, so only the checksum
// ledger can notice. The gated metric is mean-time-to-detect: the flip must
// be reported within two sweep periods (the sweep in flight at injection may
// have already passed the damaged replica), and the repair pipeline
// (quarantine -> admission-slotted re-replication) must complete end to end.
//
// Phase B (foreground overhead, hybrid cluster + QoS): two identical
// TestBeds differing only in `cluster.scrub.enabled` run the same mixed 4K
// workload while the scrubber sweeps every replica under
// ServiceClass::kScrub. The gate bounds the read-p99 delta: background
// verification must ride the idle capacity the QoS scheduler leaves it, not
// tax the foreground tail.
//
// Gates (bench/bench_baselines.json, "scrub_mttd"): detected, detected
// within two sweep periods, repaired end to end, foreground p99 within the
// overhead bound.
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/system.h"

using namespace ursa;

namespace {

constexpr Nanos kSweepInterval = msec(500);
constexpr double kOverheadBound = 1.30;  // scrub-on read p99 <= 1.3x scrub-off

scrub::ScrubConfig BenchScrubConfig(Nanos sweep) {
  scrub::ScrubConfig s;
  s.enabled = true;
  s.sweep_interval = sweep;
  s.tick_interval = msec(5);
  s.read_bytes = 256 * kKiB;
  s.per_server_concurrent = 1;
  s.max_concurrent = 4;
  return s;
}

std::vector<uint8_t> Pattern(size_t length, uint64_t seed) {
  std::vector<uint8_t> out(length);
  uint64_t x = seed * 0x9e3779b97f4a7c15ULL + 1;
  for (size_t i = 0; i < length; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    out[i] = static_cast<uint8_t>(x);
  }
  return out;
}

struct MttdResult {
  bool detected = false;
  bool repaired = false;
  double mttd_ms = -1;
  double sweep_ms = 0;          // effective period (configured or overrun)
  double detect_budget_ms = 0;  // 2x effective period
};

MttdResult RunMttd() {
  core::SystemProfile profile = core::UrsaHybridProfile(3);
  profile.name = "scrub-mttd";
  profile.cluster.chunk_size = 4 * kMiB;  // small chunks -> sweeps finish fast
  profile.cluster.scrub = BenchScrubConfig(kSweepInterval);
  core::TestBed bed(profile);
  auto& sim = bed.sim();
  auto& cluster = bed.cluster();

  client::VirtualDisk* disk = bed.NewDisk(16 * kMiB, 3, 1);

  // Materialize real bytes (the ledger only checksums payload-carrying
  // writes) and let journal replay put them at rest on the backup stores.
  auto data = Pattern(64 * kKiB, 17);
  Status write_status = Internal("pending");
  disk->Write(0, data.size(), data.data(), [&](const Status& s) { write_status = s; });
  sim.RunUntil(sim.Now() + sec(5));
  URSA_CHECK(write_status.ok());
  for (int i = 0; i < 500; ++i) {
    bool drained = true;
    for (journal::JournalManager* jm : cluster.journal_managers()) {
      drained = drained && jm->ReplayDrained();
    }
    if (drained) {
      break;
    }
    sim.RunUntil(sim.Now() + msec(10));
  }

  // Let one sweep finish so every ledger-known sector has been verified once
  // (and so the measured detection starts from a sweep boundary, not from
  // coordinator warm-up).
  scrub::ScrubCoordinator* coordinator = cluster.scrub_coordinator();
  URSA_CHECK(coordinator != nullptr);
  uint64_t settled = coordinator->sweeps_completed();
  for (int i = 0; i < 1000 && coordinator->sweeps_completed() < settled + 1; ++i) {
    sim.RunUntil(sim.Now() + msec(10));
  }

  // Flip one byte of an at-rest backup replica.
  const cluster::DiskMeta* meta = *cluster.master().GetDisk(1);
  const cluster::ChunkLayout& layout = meta->chunks[0];
  cluster::ServerId victim = layout.replicas[2].server;
  cluster.master().server(victim)->store()->CorruptByte(layout.chunk, 8192 + 37, 0x40);
  sim.RunUntil(sim.Now() + msec(2));  // let the read-modify-write land
  Nanos inject_time = sim.Now();

  MttdResult out;
  Nanos deadline = inject_time + 8 * kSweepInterval;
  while (sim.Now() < deadline && cluster.scrub_mismatches_reported() < 1) {
    sim.RunUntil(sim.Now() + msec(5));
  }
  if (cluster.scrub_mismatches_reported() >= 1) {
    out.detected = true;
    out.mttd_ms = ToMsec(sim.Now() - inject_time);
  }

  // The bound is two EFFECTIVE sweep periods: the configured pace, or the
  // actual sweep duration when verification load makes a sweep overrun it.
  Nanos effective = std::max(kSweepInterval, coordinator->last_sweep_duration());
  out.sweep_ms = ToMsec(effective);
  out.detect_budget_ms = ToMsec(2 * effective);

  for (int i = 0; i < 1000 && cluster.scrub_repairs_completed() < 1; ++i) {
    sim.RunUntil(sim.Now() + msec(10));
  }
  out.repaired = cluster.scrub_repairs_completed() >= 1 &&
                 cluster.master().server(victim)->scrub_quarantine_size() == 0;

  // The repaired bytes must read back clean.
  std::vector<uint8_t> check(data.size(), 0xCD);
  Status read_status = Internal("pending");
  disk->Read(0, check.size(), check.data(), [&](const Status& s) { read_status = s; });
  sim.RunUntil(sim.Now() + sec(5));
  out.repaired = out.repaired && read_status.ok() && check == data &&
                 disk->stats().integrity_errors == 0;
  return out;
}

struct OverheadResult {
  double read_p99_us = 0;
  double write_p99_us = 0;
  uint64_t scrub_tasks = 0;  // replica verifications completed during the run
};

// One Phase-B arm: the same paced workload with the scrubber on or off.
OverheadResult RunOverheadMode(bool scrub_enabled) {
  core::SystemProfile profile = core::UrsaHybridProfile(3);
  profile.name = scrub_enabled ? "scrub-on" : "scrub-off";
  profile.cluster.qos.enabled = true;  // kScrub rides the background band
  profile.cluster.chunk_size = 16 * kMiB;
  if (scrub_enabled) {
    profile.cluster.scrub = BenchScrubConfig(sec(2));
  }
  core::TestBed bed(profile);

  client::VirtualDisk* fg = bed.NewDisk(128 * kMiB);
  core::WorkloadSpec spec;
  spec.block_size = 4 * kKiB;
  spec.queue_depth = 8;
  spec.read_fraction = 0.7;

  OverheadResult out;
  core::RunMetrics m = bed.RunWorkload(fg, spec, msec(300), sec(2), profile.name);
  out.read_p99_us = static_cast<double>(m.read_latency_us.Percentile(99));
  out.write_p99_us = static_cast<double>(m.write_latency_us.Percentile(99));
  if (scrub_enabled) {
    out.scrub_tasks = bed.cluster().scrub_coordinator()->tasks_completed();
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Phase A: latent-corruption mean time to detect ===\n\n");
  MttdResult mttd = RunMttd();
  std::printf("detected: %s, mttd: %.0f ms (budget: %.0f ms = 2 x %.0f ms sweep)\n",
              mttd.detected ? "yes" : "NO", mttd.mttd_ms, mttd.detect_budget_ms, mttd.sweep_ms);
  std::printf("repair pipeline: %s\n", mttd.repaired ? "healed end to end" : "DID NOT HEAL");

  std::printf("\n=== Phase B: foreground tail with sweeps running ===\n\n");
  OverheadResult off = RunOverheadMode(false);
  OverheadResult on = RunOverheadMode(true);
  core::Table table({"mode", "read p99 (us)", "write p99 (us)", "scrub tasks"});
  table.AddRow({"scrub-off", core::Table::Int(off.read_p99_us), core::Table::Int(off.write_p99_us),
                "-"});
  table.AddRow({"scrub-on", core::Table::Int(on.read_p99_us), core::Table::Int(on.write_p99_us),
                core::Table::Int(static_cast<double>(on.scrub_tasks))});
  table.Print();

  double overhead = off.read_p99_us > 0 ? on.read_p99_us / off.read_p99_us : 0;
  std::printf("\nScrub-on read p99 overhead: %.2fx (bound: <= %.2fx)\n", overhead, kOverheadBound);

  bool within_budget = mttd.detected && mttd.mttd_ms <= mttd.detect_budget_ms;
  bool overhead_ok = overhead > 0 && overhead <= kOverheadBound;
  bool ok = mttd.detected && within_budget && mttd.repaired && overhead_ok;
  std::printf("\nScrub-MTTD %s\n", ok ? "SHAPE-OK" : "SHAPE-MISMATCH");

  std::string json_path = core::MetricsJsonPath(argc, argv);
  if (json_path.empty()) {
    json_path = "BENCH_scrub_mttd.json";
  }
  std::ofstream os(json_path);
  os << "{\"bench\":\"scrub_mttd\""
     << ",\"detected\":" << (mttd.detected ? 1 : 0)
     << ",\"mttd_within_two_sweeps\":" << (within_budget ? 1 : 0)
     << ",\"repaired\":" << (mttd.repaired ? 1 : 0)
     << ",\"scrub_overhead_ok\":" << (overhead_ok ? 1 : 0)
     << ",\"_mttd_ms\":" << mttd.mttd_ms
     << ",\"_sweep_period_ms\":" << mttd.sweep_ms
     << ",\"_detect_budget_ms\":" << mttd.detect_budget_ms
     << ",\"_fg_read_p99_us_off\":" << off.read_p99_us
     << ",\"_fg_read_p99_us_on\":" << on.read_p99_us
     << ",\"_fg_write_p99_us_off\":" << off.write_p99_us
     << ",\"_fg_write_p99_us_on\":" << on.write_p99_us
     << ",\"_overhead_ratio\":" << overhead
     << ",\"_scrub_tasks_during_window\":" << on.scrub_tasks << "}\n";
  std::printf("metrics written to %s\n", json_path.c_str());
  return 0;
}
