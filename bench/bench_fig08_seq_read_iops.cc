// Figure 8: sequential read IOPS vs queue depth (BS = 4 KB).
//
// Paper result: IOPS grow with queue depth for every system thanks to
// in-network pipelining (§3.4); Ursa leads at every depth and reaches ~45 K
// at qd16 (the NBD driver's maximum).
#include <cstdio>
#include <vector>

#include "src/baselines/ceph_model.h"
#include "src/baselines/sheepdog_model.h"
#include "src/core/system.h"

using namespace ursa;

int main() {
  std::printf("=== Figure 8: sequential read IOPS vs queue depth (BS=4KB) ===\n\n");

  const int kDepths[] = {1, 2, 4, 8, 16};
  std::vector<core::SystemProfile> systems = {
      baselines::SheepdogProfile(3),
      baselines::CephProfile(3),
      core::UrsaSsdProfile(3),
      core::UrsaHybridProfile(3),
  };

  core::Table table({"System", "qd1", "qd2", "qd4", "qd8", "qd16"});
  std::vector<std::vector<double>> results;
  for (const core::SystemProfile& profile : systems) {
    core::TestBed bed(profile);
    auto* disk = bed.NewDisk(4ull * kGiB);
    std::vector<std::string> row = {profile.name};
    std::vector<double> iops_row;
    for (int qd : kDepths) {
      core::WorkloadSpec spec;
      spec.pattern = core::WorkloadSpec::Pattern::kSequential;
      spec.block_size = 4 * kKiB;
      spec.queue_depth = qd;
      spec.read_fraction = 1.0;
      core::RunMetrics m = bed.RunWorkload(disk, spec, msec(200), sec(2), "seqread");
      iops_row.push_back(m.read_iops());
      row.push_back(core::Table::Int(m.read_iops()));
    }
    results.push_back(iops_row);
    table.AddRow(row);
  }
  table.Print();

  bool ok = true;
  auto check = [&ok](bool cond, const char* what) {
    std::printf("  %-60s %s\n", what, cond ? "OK" : "MISMATCH");
    ok = ok && cond;
  };
  std::printf("\n--- shape checks (paper) ---\n");
  for (size_t s = 0; s < systems.size(); ++s) {
    check(results[s][4] > 2.5 * results[s][0],
          ("IOPS scale with queue depth: " + systems[s].name).c_str());
  }
  check(results[2][4] > results[0][4] && results[2][4] > results[1][4],
        "Ursa leads at qd16");
  check(results[3][4] > 0.85 * results[2][4], "hybrid ~ SSD-only for reads");
  std::printf("Fig8 %s\n", ok ? "SHAPE-OK" : "SHAPE-MISMATCH");
  return 0;
}
