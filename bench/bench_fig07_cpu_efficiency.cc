// Figure 7: CPU efficiency (IOPS per busy core), client and server side.
//
// Paper methodology: all tested data fits in a single 4 MB region (one chunk,
// effectively cached), isolating the software path. Paper result: Ursa
// outperforms Sheepdog and Ceph "by orders of magnitude"; Ursa's client does
// ~140 K IOPS/core. (Ceph lacks client-side numbers — its client lives
// inside QEMU — matching the paper's missing bars.)
#include <cstdio>
#include <vector>

#include "src/baselines/ceph_model.h"
#include "src/baselines/sheepdog_model.h"
#include "src/core/system.h"

using namespace ursa;

namespace {

struct Row {
  std::string name;
  double client_read, client_write, server_read, server_write;
  bool client_reported;
};

Row RunSystem(const core::SystemProfile& profile, bool client_reported) {
  Row row;
  row.name = profile.name;
  row.client_reported = client_reported;
  core::WorkloadSpec spec;
  spec.block_size = 4 * kKiB;
  spec.queue_depth = 16;
  spec.span = 4 * kMiB;  // single-chunk hot set (paper: fits the chunk cache)

  {
    core::TestBed bed(profile);
    auto* disk = bed.NewDisk(256 * kMiB);
    spec.read_fraction = 1.0;
    core::RunMetrics m = bed.RunWorkload(disk, spec, msec(300), sec(2), "read");
    row.client_read = m.ClientIopsPerCore();
    row.server_read = m.ServerIopsPerCore();
  }
  {
    core::TestBed bed(profile);
    auto* disk = bed.NewDisk(256 * kMiB);
    spec.read_fraction = 0.0;
    core::RunMetrics m = bed.RunWorkload(disk, spec, msec(300), sec(2), "write");
    row.client_write = m.ClientIopsPerCore();
    row.server_write = m.ServerIopsPerCore();
  }
  return row;
}

}  // namespace

int main() {
  std::printf("=== Figure 7: IOPS efficiency (IOPS per busy core) ===\n");
  std::printf("(paper: Ursa client read ~140K/core; orders of magnitude over Ceph)\n\n");

  std::vector<Row> rows;
  rows.push_back(RunSystem(core::UrsaSsdProfile(3), true));
  rows.push_back(RunSystem(baselines::SheepdogProfile(3), true));
  rows.push_back(RunSystem(baselines::CephProfile(3), false));

  core::Table table(
      {"System", "client read", "client write", "server read", "server write"});
  for (const Row& r : rows) {
    table.AddRow({r.name, r.client_reported ? core::Table::Int(r.client_read) : "n/a",
                  r.client_reported ? core::Table::Int(r.client_write) : "n/a",
                  core::Table::Int(r.server_read), core::Table::Int(r.server_write)});
  }
  table.Print();

  const Row& ursa = rows[0];
  const Row& sheep = rows[1];
  const Row& ceph = rows[2];
  bool ok = true;
  auto check = [&ok](bool cond, const char* what) {
    std::printf("  %-60s %s\n", what, cond ? "OK" : "MISMATCH");
    ok = ok && cond;
  };
  std::printf("\n--- shape checks (paper) ---\n");
  check(ursa.client_read > 100000 && ursa.client_read < 200000,
        "Ursa client read efficiency ~140K IOPS/core");
  check(ursa.client_read > 3 * sheep.client_read, "Ursa client >> Sheepdog client");
  check(ursa.server_read > 2 * sheep.server_read, "Ursa server >> Sheepdog server");
  check(sheep.server_read > 3 * ceph.server_read, "Sheepdog server >> Ceph server");
  check(ursa.server_read > 10 * ceph.server_read,
        "Ursa vs Ceph: order(s) of magnitude server gap");
  std::printf("Fig7 %s\n", ok ? "SHAPE-OK" : "SHAPE-MISMATCH");
  return 0;
}
